//! Content-addressed caching of solve setups.
//!
//! The expensive, immutable half of a run — geometry construction, track
//! laydown + segmentation, the exp table — depends only on a handful of
//! configuration fields. This module derives a **stable content hash**
//! over exactly those fields (the cache key) and memoizes the resulting
//! [`SolveSetup`] behind an `Arc`, so a warm job skips straight to the
//! sweep while cold builds of the same key are single-flighted (waiters
//! block until the in-progress build publishes instead of building
//! twice).
//!
//! ## Key derivation
//!
//! The key is FNV-1a 64 over a canonical string with one fragment per
//! setup-relevant field:
//!
//! * **model** — the full geometry specification: C5G7 options with
//!   float fields as exact bit patterns, or the declarative case's
//!   canonical [`CaseSpec::emit`] rendering (geometry sections only, via
//!   the emitted text);
//! * **tracks** — [`TrackParams::cache_key_fragment`] (quadrature +
//!   spacings, bit-exact floats);
//! * **mode** — the segment storage mode, including the manager budget;
//! * **backend** — the backend *class* (the serial and device backends
//!   skip the shared segment store, so their setups differ from the
//!   parallel CPU one);
//! * **exp** — the exponential evaluator, with the table tolerance
//!   (bit-exact) when `exp = table`; intrinsic runs ignore the tolerance
//!   and deliberately share a key across tolerance values.
//!
//! Everything else (eigen tolerances, iteration caps, schedules, tally
//! strategy, fault/telemetry settings) is per-job solver state and must
//! NOT enter the key: two requests differing only there share a setup.
//!
//! The hash is hand-rolled because `std::collections::hash_map::
//! DefaultHasher` is explicitly not stable across releases or processes;
//! cache keys land in telemetry artifacts and CI baselines, so they must
//! never drift under a toolchain bump.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};

use antmoc::pipeline::SolveSetup;
use antmoc::{BackendConfig, ModelSpec, RunConfig};
use antmoc_solver::ExpMode;

/// FNV-1a 64-bit: tiny, dependency-free, and stable by definition.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical key string a configuration's setup is addressed by.
/// Exposed (rather than just the hash) so tests and operators can see
/// *why* two configurations do or do not share a setup.
pub fn cache_key_string(config: &RunConfig) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(256);
    match &config.model {
        ModelSpec::C5g7(o) => {
            let _ = write!(
                s,
                "model=c5g7/{:?}/rings={},sectors={},refine={},dz={:016x};",
                o.config,
                o.fuel_rings,
                o.sectors,
                o.reflector_refine,
                o.axial_dz.to_bits()
            );
        }
        ModelSpec::Lattice(spec) => {
            // `emit` is the spec's canonical rendering: parse(emit(s))
            // round-trips, so it is exactly the content identity of the
            // declarative geometry — once the non-setup parts are
            // stripped. The passthrough sections (tracks, solver, fault,
            // telemetry, ...) are per-job config already mirrored into
            // `RunConfig` and keyed there; the case name and acceptance
            // gates never reach the built model at all.
            let mut geometry_only = (**spec).clone();
            geometry_only.name = String::new();
            geometry_only.gates = Default::default();
            geometry_only.raw.clear();
            let _ = write!(s, "model=case/{};", geometry_only.emit());
        }
    }
    let _ = write!(s, "tracks={};", config.tracks.cache_key_fragment());
    let _ = write!(s, "mode={:?};", config.mode);
    let backend = match &config.backend {
        BackendConfig::Cpu => "cpu",
        BackendConfig::CpuSerial => "cpu-serial",
        BackendConfig::Device { .. } => "device",
    };
    let _ = write!(s, "backend={backend};");
    match config.kernel.exp {
        ExpMode::Intrinsic => {
            let _ = write!(s, "exp=intrinsic;");
        }
        ExpMode::Table => {
            let _ = write!(s, "exp=table/{:016x};", config.kernel.exp_tolerance.to_bits());
        }
    }
    s
}

/// The 64-bit content hash addressing a configuration's setup.
pub fn cache_key(config: &RunConfig) -> u64 {
    fnv1a_64(cache_key_string(config).as_bytes())
}

enum Slot {
    Ready(Arc<SolveSetup>),
    /// A build is in flight on some worker; waiters sleep on the cache
    /// condvar until it publishes (or fails and clears the marker).
    Building,
}

struct CacheState {
    slots: HashMap<u64, Slot>,
    /// Ready keys in publish order, oldest first (FIFO eviction).
    order: Vec<u64>,
}

/// The shared setup cache: single-flight builds, FIFO eviction beyond
/// `capacity` entries (evicted setups stay alive for jobs still holding
/// their `Arc`).
pub struct SetupCache {
    capacity: usize,
    inner: Mutex<CacheState>,
    cv: Condvar,
}

/// Clears an abandoned `Building` marker if the build panics, so waiting
/// jobs retry the build instead of sleeping forever.
struct BuildGuard<'a> {
    cache: &'a SetupCache,
    key: u64,
    armed: bool,
}

impl Drop for BuildGuard<'_> {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let mut st = self.cache.inner.lock().unwrap();
        if matches!(st.slots.get(&self.key), Some(Slot::Building)) {
            st.slots.remove(&self.key);
        }
        drop(st);
        self.cache.cv.notify_all();
    }
}

impl SetupCache {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheState { slots: HashMap::new(), order: Vec::new() }),
            cv: Condvar::new(),
        }
    }

    /// Ready entries currently resident.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().order.len()
    }

    /// Whether no setups are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the setup for `key`, building it with `build` on a miss.
    /// The bool is `true` for a hit — including jobs that waited out
    /// another worker's in-flight build of the same key (they reused the
    /// work, which is what the hit/miss telemetry is about).
    pub fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> SolveSetup,
    ) -> (Arc<SolveSetup>, bool) {
        if self.capacity == 0 {
            return (Arc::new(build()), false);
        }
        let mut st = self.inner.lock().unwrap();
        loop {
            match st.slots.get(&key) {
                Some(Slot::Ready(setup)) => return (setup.clone(), true),
                Some(Slot::Building) => st = self.cv.wait(st).unwrap(),
                None => break,
            }
        }
        st.slots.insert(key, Slot::Building);
        drop(st);

        let mut guard = BuildGuard { cache: self, key, armed: true };
        let setup = Arc::new(build());
        guard.armed = false;

        let mut st = self.inner.lock().unwrap();
        st.slots.insert(key, Slot::Ready(setup.clone()));
        st.order.push(key);
        while st.order.len() > self.capacity {
            let oldest = st.order.remove(0);
            st.slots.remove(&oldest);
        }
        drop(st);
        self.cv.notify_all();
        (setup, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn key_ignores_per_job_solver_state() {
        let a = RunConfig::default();
        let mut b = RunConfig::default();
        b.eigen.tolerance = 1e-9;
        b.eigen.max_iterations = 7;
        b.kernel.tallies = antmoc_solver::TallyMode::Atomic;
        b.balance_sweeps = 3;
        assert_eq!(cache_key(&a), cache_key(&b), "solver knobs must not enter the key");
    }

    #[test]
    fn key_tracks_every_setup_relevant_field() {
        let base = RunConfig::default();
        let mutations: Vec<(&str, Box<dyn Fn(&mut RunConfig)>)> = vec![
            ("num_azim", Box::new(|c: &mut RunConfig| c.tracks.num_azim = 8)),
            ("radial_spacing", Box::new(|c| c.tracks.radial_spacing += 1e-12)),
            ("axial_dz", Box::new(|c| c.model.c5g7_mut().axial_dz *= 1.0 + 1e-14)),
            (
                "rodded",
                Box::new(|c| c.model.c5g7_mut().config = antmoc::geom::c5g7::RoddedConfig::RoddedA),
            ),
            ("mode", Box::new(|c| c.mode = antmoc_solver::StorageMode::Explicit)),
            ("backend", Box::new(|c| c.backend = BackendConfig::CpuSerial)),
            ("exp", Box::new(|c| c.kernel.exp = ExpMode::Table)),
        ];
        for (name, m) in &mutations {
            let mut cfg = base.clone();
            m(&mut cfg);
            assert_ne!(cache_key(&cfg), cache_key(&base), "{name} must change the key");
        }
        // Table tolerance is key-relevant only under exp = table.
        let mut t1 = base.clone();
        t1.kernel.exp = ExpMode::Table;
        let mut t2 = t1.clone();
        t2.kernel.exp_tolerance = 1e-9;
        assert_ne!(cache_key(&t1), cache_key(&t2));
        let mut i2 = base.clone();
        i2.kernel.exp_tolerance = 1e-9;
        assert_eq!(cache_key(&base), cache_key(&i2), "intrinsic runs ignore the tolerance");
    }

    #[test]
    fn cache_hits_and_evicts_fifo() {
        let cache = SetupCache::new(2);
        let build = |cfg: &RunConfig| {
            let mut c = cfg.clone();
            // Coarse enough to build instantly.
            c.model.c5g7_mut().axial_dz = 64.26;
            c.tracks = antmoc_track::TrackParams {
                num_azim: 4,
                radial_spacing: 5.0,
                ..Default::default()
            };
            c.tracks.axial_spacing = 60.0;
            c
        };
        let cfg = build(&RunConfig::default());
        let (_s1, hit1) = cache.get_or_build(1, || antmoc::build_setup(&cfg));
        assert!(!hit1);
        let (_s2, hit2) = cache.get_or_build(1, || panic!("must not rebuild on a hit"));
        assert!(hit2);
        assert_eq!(cache.len(), 1);
        let (_s3, _) = cache.get_or_build(2, || antmoc::build_setup(&cfg));
        let (_s4, _) = cache.get_or_build(3, || antmoc::build_setup(&cfg));
        assert_eq!(cache.len(), 2, "FIFO eviction holds the cache at capacity");
        // Key 1 (oldest) was evicted; a re-request rebuilds.
        let (_s5, hit5) = cache.get_or_build(1, || antmoc::build_setup(&cfg));
        assert!(!hit5);
    }
}
