//! The flight recorder: bounded in-memory rings of recently finished
//! jobs and recent failures, plus the service-level objectives computed
//! over them — the post-mortem story for a long-running service.
//!
//! Two rings, deliberately separate: the *job* ring holds the last N
//! jobs (stats + a physics summary of the report) so a dashboard can
//! show "what just happened"; the *error* ring holds the last K
//! errored/panicked jobs with the panic message and the config digest
//! (the same content hash the setup cache keys on), so a rare failure
//! survives a burst of healthy traffic long enough to be reproduced
//! offline. Everything exports as one JSON document via
//! [`FlightRecorder::to_json`].

use std::collections::VecDeque;
use std::sync::Mutex;

use antmoc_telemetry::Json;

/// One finished job as the recorder remembers it: the [`JobStats`]
/// fields plus a summary of the run report (absent when the job failed).
///
/// [`JobStats`]: crate::JobStats
#[derive(Debug, Clone)]
pub struct JobRecord {
    pub job_id: u64,
    pub case: String,
    pub ok: bool,
    pub cache_hit: bool,
    pub queue_wait_s: f64,
    pub setup_s: f64,
    pub solve_s: f64,
    pub footprint_bytes: u64,
    pub keff: Option<f64>,
    pub iterations: Option<u64>,
    pub converged: Option<bool>,
}

/// One failed job: why it failed and which configuration to replay.
#[derive(Debug, Clone)]
pub struct ErrorRecord {
    pub job_id: u64,
    pub case: String,
    /// The panic message (or error description).
    pub message: String,
    /// Hex FNV-1a digest of the setup-relevant configuration — the same
    /// identity the setup cache uses, so the failure maps to a
    /// reproducer config without storing the whole config here.
    pub config_digest: String,
}

#[derive(Default)]
struct Rings {
    jobs: VecDeque<JobRecord>,
    errors: VecDeque<ErrorRecord>,
    total: u64,
    failed: u64,
}

/// Bounded rings of recent jobs and failures with monotonic totals.
pub struct FlightRecorder {
    rings: Mutex<Rings>,
    jobs_cap: usize,
    errors_cap: usize,
}

impl FlightRecorder {
    /// `jobs_cap` bounds the job ring, `errors_cap` the error ring;
    /// either may be 0 to disable that ring (totals still accumulate).
    pub fn new(jobs_cap: usize, errors_cap: usize) -> Self {
        Self { rings: Mutex::new(Rings::default()), jobs_cap, errors_cap }
    }

    /// Records a finished job (success or failure). Failures should
    /// *also* go through [`FlightRecorder::record_error`] so the error
    /// ring keeps the message and digest.
    pub fn record_job(&self, record: JobRecord) {
        let mut rings = self.rings.lock().unwrap();
        rings.total += 1;
        if !record.ok {
            rings.failed += 1;
        }
        if self.jobs_cap > 0 {
            if rings.jobs.len() == self.jobs_cap {
                rings.jobs.pop_front();
            }
            rings.jobs.push_back(record);
        }
    }

    /// Records a failure's message and config digest in the error ring.
    pub fn record_error(&self, record: ErrorRecord) {
        let mut rings = self.rings.lock().unwrap();
        if self.errors_cap > 0 {
            if rings.errors.len() == self.errors_cap {
                rings.errors.pop_front();
            }
            rings.errors.push_back(record);
        }
    }

    /// Jobs ever recorded (not bounded by the ring).
    pub fn jobs_total(&self) -> u64 {
        self.rings.lock().unwrap().total
    }

    /// Failed jobs ever recorded.
    pub fn jobs_failed(&self) -> u64 {
        self.rings.lock().unwrap().failed
    }

    /// Failed fraction of all recorded jobs (0 when nothing ran yet).
    pub fn error_rate(&self) -> f64 {
        let rings = self.rings.lock().unwrap();
        if rings.total == 0 {
            0.0
        } else {
            rings.failed as f64 / rings.total as f64
        }
    }

    /// Snapshot of the job ring, oldest first.
    pub fn recent_jobs(&self) -> Vec<JobRecord> {
        self.rings.lock().unwrap().jobs.iter().cloned().collect()
    }

    /// Snapshot of the error ring, oldest first.
    pub fn recent_errors(&self) -> Vec<ErrorRecord> {
        self.rings.lock().unwrap().errors.iter().cloned().collect()
    }

    /// The whole recorder as one JSON document.
    pub fn to_json(&self) -> Json {
        let rings = self.rings.lock().unwrap();
        Json::Obj(vec![
            ("jobs_total".into(), Json::Uint(rings.total)),
            ("jobs_failed".into(), Json::Uint(rings.failed)),
            ("jobs".into(), Json::Arr(rings.jobs.iter().map(job_json).collect())),
            ("errors".into(), Json::Arr(rings.errors.iter().map(error_json).collect())),
        ])
    }

    /// [`FlightRecorder::to_json`] rendered as pretty-printed text — the
    /// post-mortem artifact CI uploads.
    pub fn export_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }
}

fn job_json(r: &JobRecord) -> Json {
    let mut pairs = vec![
        ("job_id".into(), Json::Uint(r.job_id)),
        ("case".into(), Json::Str(r.case.clone())),
        ("ok".into(), Json::Bool(r.ok)),
        ("cache_hit".into(), Json::Bool(r.cache_hit)),
        ("queue_wait_s".into(), Json::Num(r.queue_wait_s)),
        ("setup_s".into(), Json::Num(r.setup_s)),
        ("solve_s".into(), Json::Num(r.solve_s)),
        ("footprint_bytes".into(), Json::Uint(r.footprint_bytes)),
    ];
    if let Some(keff) = r.keff {
        pairs.push(("keff".into(), Json::Num(keff)));
    }
    if let Some(it) = r.iterations {
        pairs.push(("iterations".into(), Json::Uint(it)));
    }
    if let Some(conv) = r.converged {
        pairs.push(("converged".into(), Json::Bool(conv)));
    }
    Json::Obj(pairs)
}

fn error_json(r: &ErrorRecord) -> Json {
    Json::Obj(vec![
        ("job_id".into(), Json::Uint(r.job_id)),
        ("case".into(), Json::Str(r.case.clone())),
        ("message".into(), Json::Str(r.message.clone())),
        ("config_digest".into(), Json::Str(r.config_digest.clone())),
    ])
}

/// Service-level objectives the snapshot evaluates.
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// Objective on the p99 of the `serve.queue_wait_ns` histogram: the
    /// service is "meeting latency" while p99 queue+admission wait stays
    /// at or under this.
    pub queue_wait_p99_ns: u64,
    /// Error budget: the tolerated fraction of failed jobs.
    pub error_rate: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        // Generous defaults sized for the bench cases: half a minute of
        // queueing headroom (admission intentionally serializes
        // over-budget mixes) and a 1% failure budget.
        Self { queue_wait_p99_ns: 30_000_000_000, error_rate: 0.01 }
    }
}

/// The objectives evaluated against the live registry and recorder.
#[derive(Debug, Clone)]
pub struct SloStatus {
    pub queue_wait_p99_ns: u64,
    pub queue_wait_objective_ns: u64,
    pub queue_wait_ok: bool,
    pub jobs_total: u64,
    pub jobs_failed: u64,
    pub error_rate: f64,
    pub error_rate_objective: f64,
    /// Unspent fraction of the error budget: 1 with no failures, 0 once
    /// failures have consumed `error_rate_objective` of all jobs.
    pub error_budget_remaining: f64,
    pub ok: bool,
}

impl SloStatus {
    /// Evaluates `config` against an observed p99 and the job totals.
    pub fn evaluate(config: &SloConfig, queue_wait_p99_ns: u64, total: u64, failed: u64) -> Self {
        let queue_wait_ok = queue_wait_p99_ns <= config.queue_wait_p99_ns;
        let error_rate = if total == 0 { 0.0 } else { failed as f64 / total as f64 };
        let allowed = total as f64 * config.error_rate;
        let error_budget_remaining = if failed == 0 {
            1.0
        } else if allowed <= 0.0 {
            0.0
        } else {
            (1.0 - failed as f64 / allowed).clamp(0.0, 1.0)
        };
        let ok = queue_wait_ok && error_rate <= config.error_rate;
        Self {
            queue_wait_p99_ns,
            queue_wait_objective_ns: config.queue_wait_p99_ns,
            queue_wait_ok,
            jobs_total: total,
            jobs_failed: failed,
            error_rate,
            error_rate_objective: config.error_rate,
            error_budget_remaining,
            ok,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u64, ok: bool) -> JobRecord {
        JobRecord {
            job_id: id,
            case: format!("case-{id}"),
            ok,
            cache_hit: false,
            queue_wait_s: 0.001,
            setup_s: 0.5,
            solve_s: 1.5,
            footprint_bytes: 1 << 20,
            keff: ok.then_some(1.18),
            iterations: ok.then_some(42),
            converged: ok.then_some(true),
        }
    }

    #[test]
    fn rings_are_bounded_but_totals_are_not() {
        let rec = FlightRecorder::new(4, 2);
        for i in 0..10 {
            rec.record_job(job(i, i % 3 != 0));
        }
        assert_eq!(rec.jobs_total(), 10);
        assert_eq!(rec.jobs_failed(), 4); // 0, 3, 6, 9
        let recent = rec.recent_jobs();
        assert_eq!(recent.len(), 4);
        assert_eq!(recent.first().unwrap().job_id, 6, "oldest surviving entry");
        assert_eq!(recent.last().unwrap().job_id, 9);
    }

    #[test]
    fn error_ring_keeps_message_and_digest() {
        let rec = FlightRecorder::new(8, 2);
        for i in 0..3 {
            rec.record_error(ErrorRecord {
                job_id: i,
                case: "c".into(),
                message: format!("panic {i}"),
                config_digest: format!("{i:016x}"),
            });
        }
        let errors = rec.recent_errors();
        assert_eq!(errors.len(), 2);
        assert_eq!(errors[0].message, "panic 1");
        assert_eq!(errors[1].config_digest, format!("{:016x}", 2));
    }

    #[test]
    fn export_parses_as_json_with_both_rings() {
        let rec = FlightRecorder::new(4, 4);
        rec.record_job(job(1, true));
        rec.record_job(job(2, false));
        rec.record_error(ErrorRecord {
            job_id: 2,
            case: "case-2".into(),
            message: "boom".into(),
            config_digest: "deadbeef".into(),
        });
        let text = rec.export_json_string();
        let doc = antmoc_telemetry::json::parse(&text).expect("recorder export parses");
        assert_eq!(doc.get("jobs_total").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("jobs_failed").and_then(Json::as_u64), Some(1));
        assert_eq!(doc.get("jobs").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        let errors = doc.get("errors").and_then(Json::as_arr).unwrap();
        assert_eq!(errors[0].get("message").and_then(Json::as_str), Some("boom"));
    }

    #[test]
    fn slo_budget_accounting() {
        let cfg = SloConfig { queue_wait_p99_ns: 1_000, error_rate: 0.1 };
        // Healthy: fast and failure-free.
        let s = SloStatus::evaluate(&cfg, 500, 100, 0);
        assert!(s.ok && s.queue_wait_ok);
        assert_eq!(s.error_budget_remaining, 1.0);
        // Half the budget spent: 5 failures against 10 allowed.
        let s = SloStatus::evaluate(&cfg, 500, 100, 5);
        assert!(s.ok);
        assert!((s.error_budget_remaining - 0.5).abs() < 1e-12);
        // Budget blown: error rate over objective, remaining clamps to 0.
        let s = SloStatus::evaluate(&cfg, 500, 100, 20);
        assert!(!s.ok);
        assert_eq!(s.error_budget_remaining, 0.0);
        // Latency objective violated independently of errors.
        let s = SloStatus::evaluate(&cfg, 2_000, 100, 0);
        assert!(!s.ok && !s.queue_wait_ok);
        // No traffic yet: vacuously healthy.
        let s = SloStatus::evaluate(&cfg, 0, 0, 0);
        assert!(s.ok);
        assert_eq!(s.error_budget_remaining, 1.0);
    }
}
