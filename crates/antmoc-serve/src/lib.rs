//! The multi-tenant solve service: many concurrent solve requests against
//! one shared machine, amortizing the expensive immutable setup across
//! jobs — the "millions of users" refactor of ROADMAP item 1.
//!
//! A [`SolveService`] owns a pool of worker threads draining a job
//! queue. Each job carries a full run configuration (submitted parsed,
//! as INI text, or as declarative case TOML) and flows through:
//!
//! 1. **Setup, content-addressed** — the immutable products of the
//!    geometry/tracking stages ([`antmoc::SolveSetup`]: built model,
//!    track laydown + segmentation, segment store, exp table) are
//!    memoized in an [`cache`] keyed by a stable hash of exactly the
//!    setup-relevant configuration fields. A warm job skips straight to
//!    the sweep; concurrent cold jobs of the same key single-flight the
//!    build. Counters: `cache.hit`, `cache.miss`, `cache.bytes`.
//! 2. **Admission** — before the sweep, the job's device-pool footprint
//!    (the perfmodel memory model for its problem plus
//!    [`antmoc_perfmodel::advise_tallies`]' tally-buffer bytes) must fit
//!    the configured budget alongside the jobs already in flight;
//!    otherwise the job queues. Wait time (queue + admission) lands in
//!    the `serve.queue_wait_ns` histogram; the high-water mark of
//!    admitted bytes in the `serve.inflight_peak_bytes` gauge proves the
//!    pool was never overcommitted.
//! 3. **Solve, on a pooled arena** — per-job solver state lives in a
//!    [`SweepArena`] checked out of a shared pool and returned after the
//!    solve; [`SweepArena::reconfigure`] + per-sweep `prepare` make reuse
//!    safe across different problem shapes and kernel configs.
//!
//! Determinism: a job's report is **bitwise identical** to a one-shot
//! [`antmoc::run`] of the same configuration at the same worker count.
//! The sweep's parallel regions are scoped thread teams with static
//! partitioning (see the rayon shim), so concurrent jobs never share
//! scheduler state; each service worker either inherits the environment
//! worker count (like one-shot runs) or pins one via
//! [`ServeConfig::solve_threads`].

//! Observability: each job records into a **job-scoped telemetry sink**
//! (installed on the worker thread and inherited by the sweep's thread
//! team), so [`JobResult::telemetry`] is the same report a one-shot run
//! would have produced; completed sinks merge into a service-wide
//! [`MetricsRegistry`] with Prometheus-style text exposition, and a
//! [`recorder::FlightRecorder`] retains the last N jobs and the last K
//! failures (panic message + config digest) as a JSON post-mortem.
//! [`SolveService::snapshot`] bundles all three with an SLO evaluation.

pub mod cache;
pub mod recorder;

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use antmoc::pipeline::SolveSetup;
use antmoc::{RunConfig, RunReport};
use antmoc_input::CaseSpec;
use antmoc_perfmodel::{advise_tallies, MemoryModel, TallyAdvice};
use antmoc_solver::SweepArena;
use antmoc_telemetry::{Json, MetricsRegistry, RunReport as TelemetryReport, Telemetry};

use cache::SetupCache;
pub use recorder::{ErrorRecord, FlightRecorder, JobRecord, SloConfig, SloStatus};

/// Service-level configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the job queue — the number of jobs that
    /// can be *running* (setup/solve) at once, admission permitting.
    pub workers: usize,
    /// The simulated device pool the admission controller guards: the
    /// summed footprint of in-flight jobs never exceeds this. A job
    /// larger than the whole pool runs exclusively (alone) rather than
    /// being rejected.
    pub device_pool_bytes: u64,
    /// Setups retained in the content-addressed cache (FIFO eviction);
    /// 0 disables caching entirely.
    pub max_cached_setups: usize,
    /// Worker count each job's sweep regions use. `None` inherits the
    /// environment (`ANTMOC_NUM_THREADS` / available cores) exactly like
    /// a one-shot run — the setting that keeps service reports bitwise
    /// identical to serial runs.
    pub solve_threads: Option<usize>,
    /// Finished jobs the flight recorder retains (ring buffer); 0
    /// disables the job ring (totals still accumulate).
    pub recorder_jobs: usize,
    /// Errored/panicked jobs the flight recorder retains, kept in a
    /// separate (usually smaller) ring so rare failures survive a burst
    /// of healthy traffic.
    pub recorder_errors: usize,
    /// The service-level objectives [`SolveService::snapshot`] evaluates.
    pub slo: SloConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            device_pool_bytes: 4 << 30,
            max_cached_setups: 8,
            solve_threads: None,
            recorder_jobs: 64,
            recorder_errors: 16,
            slo: SloConfig::default(),
        }
    }
}

/// A solve request in any of the accepted input formats.
pub enum SolveRequest {
    /// An already-parsed configuration.
    Config(Box<RunConfig>),
    /// INI-style configuration text ([`RunConfig::parse`]).
    Ini(String),
    /// Declarative case TOML ([`CaseSpec::parse`] +
    /// [`RunConfig::from_case`]).
    CaseToml(String),
}

impl SolveRequest {
    fn into_config(self) -> Result<RunConfig, SubmitError> {
        match self {
            SolveRequest::Config(c) => Ok(*c),
            SolveRequest::Ini(text) => {
                RunConfig::parse(&text).map_err(|e| SubmitError(e.to_string()))
            }
            SolveRequest::CaseToml(text) => {
                let spec = CaseSpec::parse(&text)
                    .map_err(|e| SubmitError(format!("case line {}: {}", e.line, e.message)))?;
                RunConfig::from_case(&spec).map_err(|e| SubmitError(e.to_string()))
            }
        }
    }
}

/// A request the service refused to enqueue (parse failure or an
/// unsupported configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitError(pub String);

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SubmitError {}

/// Why a job failed after admission.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The solve panicked; the payload is the panic message. Other jobs
    /// are unaffected (the worker survives).
    Panicked(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "solve panicked: {msg}"),
        }
    }
}

/// Per-job measurements, for gates and dashboards.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Whether the setup came out of the content cache.
    pub cache_hit: bool,
    /// Submit-to-pickup plus admission wait, seconds (what
    /// `serve.queue_wait_ns` records).
    pub queue_wait_s: f64,
    /// Time in the setup stage (cache lookup + build on a miss).
    pub setup_s: f64,
    /// Time in transport + output.
    pub solve_s: f64,
    /// The admission footprint charged against the device pool.
    pub footprint_bytes: u64,
}

/// The terminal state of one job.
pub struct JobResult {
    pub job_id: u64,
    pub outcome: Result<RunReport, JobError>,
    pub stats: JobStats,
    /// The job's own telemetry report: everything the pipeline recorded
    /// while this job ran (meta, spans, counters, gauges, histograms,
    /// iteration rows) in a sink scoped to the job — the same report a
    /// one-shot [`antmoc::run`] of this configuration produces. On a
    /// failed job this holds whatever the stages recorded before the
    /// panic.
    pub telemetry: TelemetryReport,
}

/// A claim ticket for a submitted job.
#[derive(Debug)]
pub struct JobHandle {
    pub job_id: u64,
    rx: mpsc::Receiver<JobResult>,
}

impl JobHandle {
    /// Blocks until the job completes.
    pub fn wait(self) -> JobResult {
        self.rx.recv().expect("service dropped the job without replying")
    }
}

struct Job {
    id: u64,
    config: RunConfig,
    enqueued: Instant,
    tx: mpsc::Sender<JobResult>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The admission controller: a byte-budget semaphore over the simulated
/// device pool.
struct Admission {
    budget: u64,
    in_use: Mutex<u64>,
    cv: Condvar,
    peak: AtomicU64,
}

struct AdmissionPermit<'a> {
    admission: &'a Admission,
    bytes: u64,
}

impl Admission {
    fn new(budget: u64) -> Self {
        Self { budget, in_use: Mutex::new(0), cv: Condvar::new(), peak: AtomicU64::new(0) }
    }

    /// Blocks until `bytes` fit alongside the in-flight jobs, then
    /// charges them. A job bigger than the whole pool is admitted only
    /// when the pool is empty (exclusive run), never rejected — but its
    /// overshoot is visible in `serve.inflight_peak_bytes`.
    fn admit(&self, bytes: u64) -> (AdmissionPermit<'_>, std::time::Duration) {
        let t = Instant::now();
        let mut used = self.in_use.lock().unwrap();
        while !(*used + bytes <= self.budget || (*used == 0 && bytes > self.budget)) {
            used = self.cv.wait(used).unwrap();
        }
        *used += bytes;
        self.peak.fetch_max(*used, Ordering::Relaxed);
        let now_used = *used;
        drop(used);
        let tel = Telemetry::global();
        tel.gauge_set("serve.inflight_bytes", now_used as f64);
        tel.gauge_set("serve.inflight_peak_bytes", self.peak.load(Ordering::Relaxed) as f64);
        (AdmissionPermit { admission: self, bytes }, t.elapsed())
    }

    fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut used = self.admission.in_use.lock().unwrap();
        *used -= self.bytes;
        let now_used = *used;
        drop(used);
        Telemetry::global().gauge_set("serve.inflight_bytes", now_used as f64);
        self.admission.cv.notify_all();
    }
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    cache: SetupCache,
    arenas: Mutex<Vec<SweepArena>>,
    admission: Admission,
    solve_threads: Option<usize>,
    next_id: AtomicU64,
    /// Service-wide aggregation: completed job sinks merge here, and the
    /// service's own counters/gauges/histograms (`serve.*`, `cache.*`)
    /// are recorded here directly alongside the global telemetry.
    metrics: MetricsRegistry,
    recorder: FlightRecorder,
    slo: SloConfig,
}

/// The long-running solve service. Dropping it (or calling
/// [`SolveService::shutdown`]) drains the queue and joins the workers.
pub struct SolveService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl SolveService {
    pub fn new(config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            cache: SetupCache::new(config.max_cached_setups),
            arenas: Mutex::new(Vec::new()),
            admission: Admission::new(config.device_pool_bytes.max(1)),
            solve_threads: config.solve_threads,
            next_id: AtomicU64::new(1),
            metrics: MetricsRegistry::new(),
            recorder: FlightRecorder::new(config.recorder_jobs, config.recorder_errors),
            slo: config.slo.clone(),
        });
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("antmoc-serve-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Validates and enqueues a request; returns a handle to wait on.
    /// Decomposed configurations are refused — setup sharing (and with it
    /// the whole service model) is single-domain.
    pub fn submit(&self, request: SolveRequest) -> Result<JobHandle, SubmitError> {
        let config = request.into_config()?;
        if config.decomposition != (1, 1, 1) {
            return Err(SubmitError(
                "the solve service runs single-domain jobs; submit decomposed runs as one-shot \
                 `antmoc::run` calls"
                    .into(),
            ));
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let job = Job { id, config, enqueued: Instant::now(), tx };
        let mut q = self.shared.queue.lock().unwrap();
        if q.shutdown {
            return Err(SubmitError("service is shutting down".into()));
        }
        q.jobs.push_back(job);
        drop(q);
        self.shared.cv.notify_one();
        Ok(JobHandle { job_id: id, rx })
    }

    /// The high-water mark of concurrently admitted footprint bytes —
    /// the "never overcommitted" witness (compare against the configured
    /// pool).
    pub fn peak_inflight_bytes(&self) -> u64 {
        self.shared.admission.peak_bytes()
    }

    /// Ready setups currently cached.
    pub fn cached_setups(&self) -> usize {
        self.shared.cache.len()
    }

    /// The service-wide metrics registry: the service's own `serve.*` /
    /// `cache.*` series plus the merged sinks of every completed job.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.metrics
    }

    /// The flight recorder (recent jobs + recent failures).
    pub fn flight_recorder(&self) -> &FlightRecorder {
        &self.shared.recorder
    }

    /// A point-in-time view of the whole service: the SLO evaluation,
    /// the metrics exposition, and the flight-recorder export. The SLO
    /// result is also published back into the registry as `slo.*` gauges
    /// so a scrape carries the remaining error budget.
    pub fn snapshot(&self) -> ServiceSnapshot {
        let shared = &self.shared;
        let p99 = shared.metrics.histogram_percentile("serve.queue_wait_ns", 0.99);
        let slo = SloStatus::evaluate(
            &shared.slo,
            p99,
            shared.recorder.jobs_total(),
            shared.recorder.jobs_failed(),
        );
        shared.metrics.gauge_set("slo.queue_wait_p99_ns", slo.queue_wait_p99_ns as f64);
        shared.metrics.gauge_set("slo.queue_wait_objective_ns", slo.queue_wait_objective_ns as f64);
        shared.metrics.gauge_set("slo.error_budget_remaining", slo.error_budget_remaining);
        shared.metrics.gauge_set("slo.healthy", if slo.ok { 1.0 } else { 0.0 });
        ServiceSnapshot {
            slo,
            metrics_text: shared.metrics.render_text(),
            flight_json: shared.recorder.export_json_string(),
        }
    }

    /// Finishes queued jobs, then stops the workers and joins them.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.cv.notify_all();
    }
}

/// A point-in-time view of the service, taken by
/// [`SolveService::snapshot`]. The pieces are captured together (SLO
/// evaluated, then text rendered, then recorder exported) so a scrape
/// sees one consistent story.
pub struct ServiceSnapshot {
    /// The SLO evaluation at snapshot time.
    pub slo: SloStatus,
    metrics_text: String,
    flight_json: String,
}

impl ServiceSnapshot {
    /// The Prometheus-style text exposition of the metrics registry.
    pub fn render_text(&self) -> &str {
        &self.metrics_text
    }

    /// The flight-recorder post-mortem as pretty-printed JSON.
    pub fn flight_recorder_json(&self) -> &str {
        &self.flight_json
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.cv.wait(q).unwrap();
            }
        };
        let tx = job.tx.clone();
        let id = job.id;
        let result = run_job(shared, job);
        let _ = tx.send(JobResult { job_id: id, ..result });
    }
}

/// The per-job footprint charged against the device pool: the memory
/// model's working set for the problem (tracks, 2D segments, boundary
/// and scalar flux), the resident 3D segment store, the exp table, and
/// the tally buffers the sweep will allocate (privatized per-worker
/// copies when they fit the job's own tally budget, per
/// [`advise_tallies`] — the same decision the arena makes).
fn job_footprint(config: &RunConfig, setup: &SolveSetup, workers: usize) -> u64 {
    let p = &setup.problem;
    let mm = MemoryModel {
        n_2d_tracks: p.layout.num_2d_tracks() as u64,
        n_3d_tracks: p.num_tracks() as u64,
        n_2d_segments: p.layout.num_2d_segments() as u64,
        n_3d_segments_stored: 0, // counted via stored_bytes below
        n_fsrs: p.num_fsrs() as u64,
        num_groups: p.num_groups() as u64,
        fixed: 0,
    };
    let tally_bytes = match advise_tallies(
        workers,
        p.num_fsrs(),
        p.num_groups(),
        config.kernel.tally_budget_bytes,
    ) {
        TallyAdvice::Privatized { bytes } => bytes,
        TallyAdvice::Atomic { .. } => (p.num_fsrs() * p.num_groups() * 8) as u64,
    };
    let exp_bytes = setup.exp_table.as_ref().map(|t| t.bytes()).unwrap_or(0);
    mm.total_bytes() + setup.segsrc.stored_bytes() + exp_bytes + tally_bytes
}

/// Rough resident size of a cached setup, for the `cache.bytes` counter.
fn setup_bytes(setup: &SolveSetup) -> u64 {
    let p = &setup.problem;
    let mm = MemoryModel {
        n_2d_tracks: p.layout.num_2d_tracks() as u64,
        n_3d_tracks: p.num_tracks() as u64,
        n_2d_segments: p.layout.num_2d_segments() as u64,
        n_3d_segments_stored: 0,
        n_fsrs: p.num_fsrs() as u64,
        num_groups: p.num_groups() as u64,
        fixed: 0,
    };
    mm.total_bytes()
        + setup.segsrc.stored_bytes()
        + setup.exp_table.as_ref().map(|t| t.bytes()).unwrap_or(0)
}

fn run_job(shared: &Shared, job: Job) -> JobResult {
    // Service-level telemetry stays on the explicit global handle (and
    // the service registry) so `serve.*` / `cache.*` series never leak
    // into the job's own report.
    let service_tel = Telemetry::global();
    let Job { id, config, enqueued, .. } = job;
    let pickup_wait = enqueued.elapsed();
    let _scope = service_tel.trace_scope(
        "serve.job",
        &[("job", Json::Uint(id)), ("case", Json::Str(config.case_name.clone()))],
    );
    service_tel.counter_add("serve.jobs", 1);
    shared.metrics.counter_add("serve.jobs", 1);

    // Everything the pipeline records while this job runs lands in a
    // job-scoped sink, installed on this worker thread and inherited by
    // the sweep's thread team — exactly what a one-shot run records
    // into the global instance.
    let sink = Telemetry::new();
    let sink_guard = sink.install();
    antmoc::record_run_meta(&config);

    // Stage 1: content-addressed setup.
    let key = cache::cache_key(&config);
    let t_setup = Instant::now();
    let built = catch_unwind(AssertUnwindSafe(|| {
        shared.cache.get_or_build(key, || antmoc::build_setup(&config))
    }));
    let (setup, cache_hit) = match built {
        Ok(pair) => pair,
        Err(panic) => {
            // Honest stats even on the panic path: the queue wait and
            // the time burned in setup before it blew up.
            let stats = JobStats {
                queue_wait_s: pickup_wait.as_secs_f64(),
                setup_s: t_setup.elapsed().as_secs_f64(),
                ..Default::default()
            };
            return fail_job(shared, id, &config, panic_message(panic), stats, sink.report());
        }
    };
    let setup_s = t_setup.elapsed().as_secs_f64();
    if cache_hit {
        service_tel.counter_add("cache.hit", 1);
        shared.metrics.counter_add("cache.hit", 1);
    } else {
        let bytes = setup_bytes(&setup);
        service_tel.counter_add("cache.miss", 1);
        service_tel.counter_add("cache.bytes", bytes);
        shared.metrics.counter_add("cache.miss", 1);
        shared.metrics.counter_add("cache.bytes", bytes);
    }

    // Stage 2: admission against the device pool.
    let solve_workers = shared.solve_threads.unwrap_or_else(rayon::current_num_threads);
    let footprint = job_footprint(&config, &setup, solve_workers);
    let (permit, admission_wait) = shared.admission.admit(footprint);
    let queue_wait = pickup_wait + admission_wait;
    service_tel.histogram_record("serve.queue_wait_ns", queue_wait.as_nanos() as u64);
    shared.metrics.histogram_record("serve.queue_wait_ns", queue_wait.as_nanos() as u64);
    shared.metrics.gauge_set("serve.inflight_peak_bytes", shared.admission.peak_bytes() as f64);

    // Stage 3: solve on a pooled arena.
    let arena = shared
        .arenas
        .lock()
        .unwrap()
        .pop()
        .unwrap_or_else(|| SweepArena::new(config.kernel.clone()));
    let t_solve = Instant::now();
    let solved = catch_unwind(AssertUnwindSafe(|| match shared.solve_threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
            .install(|| antmoc::run_with_setup_arena(&config, &setup, arena)),
        None => antmoc::run_with_setup_arena(&config, &setup, arena),
    }));
    let solve_s = t_solve.elapsed().as_secs_f64();
    drop(permit);

    let stats = JobStats {
        cache_hit,
        queue_wait_s: queue_wait.as_secs_f64(),
        setup_s,
        solve_s,
        footprint_bytes: footprint,
    };
    match solved {
        Ok((report, arena)) => {
            {
                let mut pool = shared.arenas.lock().unwrap();
                // A few spare arenas cover the worker pool; beyond that,
                // freeing beats hoarding (mirrors the phi pool's policy).
                if pool.len() < 4 {
                    pool.push(arena);
                }
            }
            // The job is done recording: close the scope, take the
            // report, and fold the sink into the service registry.
            drop(sink_guard);
            let telemetry = sink.report();
            sink.merge_into_registry(&shared.metrics);
            shared.recorder.record_job(JobRecord {
                job_id: id,
                case: config.case_name.clone(),
                ok: true,
                cache_hit,
                queue_wait_s: stats.queue_wait_s,
                setup_s,
                solve_s,
                footprint_bytes: footprint,
                keff: Some(report.keff),
                iterations: Some(report.iterations as u64),
                converged: Some(report.converged),
            });
            JobResult { job_id: id, outcome: Ok(report), stats, telemetry }
        }
        // The arena checked out by a panicked solve is dropped with the
        // panic payload; the pool refills lazily.
        Err(panic) => fail_job(shared, id, &config, panic_message(panic), stats, sink.report()),
    }
}

/// The failure tail of [`run_job`]: count the failure, remember it in
/// the flight recorder (message + config digest), and hand back the
/// partial stats and partial job telemetry. A failed sink is *not*
/// merged into the registry — only completed jobs contribute there.
fn fail_job(
    shared: &Shared,
    id: u64,
    config: &RunConfig,
    message: String,
    stats: JobStats,
    telemetry: TelemetryReport,
) -> JobResult {
    Telemetry::global().counter_add("serve.jobs_failed", 1);
    shared.metrics.counter_add("serve.jobs_failed", 1);
    shared.recorder.record_job(JobRecord {
        job_id: id,
        case: config.case_name.clone(),
        ok: false,
        cache_hit: stats.cache_hit,
        queue_wait_s: stats.queue_wait_s,
        setup_s: stats.setup_s,
        solve_s: stats.solve_s,
        footprint_bytes: stats.footprint_bytes,
        keff: None,
        iterations: None,
        converged: None,
    });
    shared.recorder.record_error(ErrorRecord {
        job_id: id,
        case: config.case_name.clone(),
        message: message.clone(),
        config_digest: format!("{:016x}", cache::cache_key(config)),
    });
    JobResult { job_id: id, outcome: Err(JobError::Panicked(message)), stats, telemetry }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// A canonical, bit-exact rendering of the physics outputs of a report —
/// the identity the service guarantees against one-shot runs. Floats are
/// rendered as exact bit patterns: two reports have equal signatures iff
/// keff, iteration count, convergence, pin rates, and per-material fluxes
/// are bitwise identical. Timings and other wall-clock fields are
/// excluded by construction.
pub fn report_signature(report: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(1024);
    let _ = write!(
        s,
        "keff={:016x};it={};conv={};fsrs={};t2={};t3={};seg3={};",
        report.keff.to_bits(),
        report.iterations,
        report.converged,
        report.num_fsrs,
        report.num_2d_tracks,
        report.num_3d_tracks,
        report.num_3d_segments
    );
    let _ = write!(s, "pins=");
    for (addr, rate) in report.pin_rates.entries() {
        let _ = write!(
            s,
            "{}.{}/{}.{}:{:016x},",
            addr.assembly.0,
            addr.assembly.1,
            addr.pin.0,
            addr.pin.1,
            rate.to_bits()
        );
    }
    let _ = write!(s, ";flux=");
    for (mat, flux) in &report.material_flux {
        let _ = write!(s, "{mat}:");
        for v in flux {
            let _ = write!(s, "{:016x},", v.to_bits());
        }
        let _ = write!(s, "|");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ini() -> String {
        "[model]\naxial_dz = 64.26\n[tracks]\nnum_azim = 4\nradial_spacing = 2.5\nnum_polar = 2\n\
         axial_spacing = 60.0\n[solver]\ntolerance = 1e-3\nmax_iterations = 60\nmode = otf\n\
         backend = cpu\n"
            .to_string()
    }

    #[test]
    fn submit_rejects_malformed_and_decomposed_requests() {
        let service = SolveService::new(ServeConfig { workers: 1, ..Default::default() });
        assert!(service.submit(SolveRequest::Ini("[tracks]\nnum_azim = banana\n".into())).is_err());
        let mut cfg = RunConfig::default();
        cfg.decomposition = (2, 1, 1);
        let err = service.submit(SolveRequest::Config(Box::new(cfg))).unwrap_err();
        assert!(err.0.contains("single-domain"), "{err}");
        service.shutdown();
    }

    #[test]
    fn service_report_is_bitwise_identical_to_one_shot_run() {
        let config = RunConfig::parse(&tiny_ini()).unwrap();
        let serial = antmoc::run(&config);
        let service = SolveService::new(ServeConfig { workers: 2, ..Default::default() });
        let handles: Vec<_> =
            (0..3).map(|_| service.submit(SolveRequest::Ini(tiny_ini())).unwrap()).collect();
        for h in handles {
            let result = h.wait();
            let report = result.outcome.expect("job solved");
            assert_eq!(
                report_signature(&report),
                report_signature(&serial),
                "service job diverged from the one-shot run"
            );
        }
        service.shutdown();
    }

    #[test]
    fn warm_jobs_hit_the_cache() {
        let service = SolveService::new(ServeConfig { workers: 1, ..Default::default() });
        let cold = service.submit(SolveRequest::Ini(tiny_ini())).unwrap().wait();
        assert!(!cold.stats.cache_hit);
        let warm = service.submit(SolveRequest::Ini(tiny_ini())).unwrap().wait();
        assert!(warm.stats.cache_hit, "identical config must reuse the setup");
        assert!(warm.stats.setup_s <= cold.stats.setup_s);
        assert_eq!(service.cached_setups(), 1);
        service.shutdown();
    }

    #[test]
    fn admission_serializes_over_budget_job_mixes() {
        // A pool sized for ~1.5 jobs: two concurrent jobs must never be
        // in flight together, and the peak proves it.
        let config = RunConfig::parse(&tiny_ini()).unwrap();
        let setup = antmoc::build_setup(&config);
        let one = job_footprint(&config, &setup, rayon::current_num_threads());
        let service = SolveService::new(ServeConfig {
            workers: 4,
            device_pool_bytes: one + one / 2,
            ..Default::default()
        });
        let handles: Vec<_> =
            (0..4).map(|_| service.submit(SolveRequest::Ini(tiny_ini())).unwrap()).collect();
        for h in handles {
            assert!(h.wait().outcome.is_ok());
        }
        let peak = service.peak_inflight_bytes();
        assert!(peak <= one + one / 2, "pool overcommitted: peak {peak} budget {}", one + one / 2);
        assert!(peak >= one, "at least one job must have been admitted");
        service.shutdown();
    }

    #[test]
    fn panicked_jobs_fail_cleanly_and_the_worker_survives() {
        let service = SolveService::new(ServeConfig { workers: 1, ..Default::default() });
        // An axial model whose dz exceeds the span produces no axial
        // cells... actually an unknown material cannot happen post-parse,
        // so force a panic through an impossible track spec instead.
        let mut cfg = RunConfig::parse(&tiny_ini()).unwrap();
        cfg.tracks.num_azim = 0; // violates the tracker's contract
        let r = service.submit(SolveRequest::Config(Box::new(cfg))).unwrap().wait();
        assert!(matches!(r.outcome, Err(JobError::Panicked(_))));
        // Honest stats on the panic path: the setup stage ran (and blew
        // up), so its elapsed time must be reported, not zeroed.
        assert!(r.stats.setup_s > 0.0, "setup_s dropped on the panic path");
        // The failure is remembered: message and config digest in the
        // error ring, failed total on the recorder and the registry.
        let errors = service.flight_recorder().recent_errors();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].job_id, r.job_id);
        assert!(!errors[0].config_digest.is_empty());
        assert_eq!(service.flight_recorder().jobs_failed(), 1);
        assert_eq!(service.metrics().counter("serve.jobs_failed"), 1);
        // The worker is still alive and solves the next job.
        let ok = service.submit(SolveRequest::Ini(tiny_ini())).unwrap().wait();
        assert!(ok.outcome.is_ok());
        // SLO: one failure out of two jobs blows a 1% budget.
        let snap = service.snapshot();
        assert_eq!(snap.slo.jobs_total, 2);
        assert_eq!(snap.slo.jobs_failed, 1);
        assert_eq!(snap.slo.error_budget_remaining, 0.0);
        assert!(!snap.slo.ok);
        service.shutdown();
    }

    #[test]
    fn snapshot_exposes_metrics_slo_and_flight_recorder() {
        let service = SolveService::new(ServeConfig { workers: 2, ..Default::default() });
        let handles: Vec<_> =
            (0..3).map(|_| service.submit(SolveRequest::Ini(tiny_ini())).unwrap()).collect();
        for h in handles {
            assert!(h.wait().outcome.is_ok());
        }
        let snap = service.snapshot();
        let text = snap.render_text();
        antmoc_telemetry::metrics::validate_exposition(text).expect("exposition parses");
        assert!(text.contains("serve_jobs_total 3"), "missing serve_jobs_total:\n{text}");
        assert!(text.contains("serve_queue_wait_ns_bucket{le="), "missing queue-wait buckets");
        assert!(text.contains("serve_queue_wait_ns_count 3"));
        assert!(text.contains("slo_error_budget_remaining 1"));
        assert!(snap.slo.ok);
        assert_eq!(snap.slo.jobs_total, 3);
        let doc = antmoc_telemetry::json::parse(snap.flight_recorder_json()).unwrap();
        assert_eq!(doc.get("jobs_total").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("jobs").and_then(Json::as_arr).map(<[Json]>::len), Some(3));
        service.shutdown();
    }

    #[test]
    fn job_telemetry_matches_one_shot_and_registry_sums_the_sinks() {
        let config = RunConfig::parse(&tiny_ini()).unwrap();
        // One-shot baseline recorded into a scoped sink of its own, so
        // the comparison is sink-report against sink-report.
        let baseline = {
            let sink = Telemetry::new();
            let guard = sink.install();
            let _ = antmoc::run(&config);
            drop(guard);
            sink.report()
        };
        let service = SolveService::new(ServeConfig { workers: 1, ..Default::default() });
        let r = service.submit(SolveRequest::Ini(tiny_ini())).unwrap().wait();
        assert!(r.outcome.is_ok());
        assert_eq!(
            r.telemetry.deterministic_digest(),
            baseline.deterministic_digest(),
            "job-scoped report diverged from the one-shot run"
        );
        // With a single completed job, the registry's job-sourced series
        // must equal the sink exactly (counters bit-for-bit, histograms
        // sample-for-sample).
        for (name, &value) in &r.telemetry.counters {
            assert_eq!(service.metrics().counter(name), value, "counter {name}");
        }
        for (name, summary) in &r.telemetry.histograms {
            let merged = service.metrics().histogram(name).expect(name);
            assert_eq!(merged.count(), summary.count, "histogram {name}");
        }
        service.shutdown();
    }
}
