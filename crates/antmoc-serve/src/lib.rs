//! The multi-tenant solve service: many concurrent solve requests against
//! one shared machine, amortizing the expensive immutable setup across
//! jobs — the "millions of users" refactor of ROADMAP item 1.
//!
//! A [`SolveService`] owns a pool of worker threads draining a job
//! queue. Each job carries a full run configuration (submitted parsed,
//! as INI text, or as declarative case TOML) and flows through:
//!
//! 1. **Setup, content-addressed** — the immutable products of the
//!    geometry/tracking stages ([`antmoc::SolveSetup`]: built model,
//!    track laydown + segmentation, segment store, exp table) are
//!    memoized in an [`cache`] keyed by a stable hash of exactly the
//!    setup-relevant configuration fields. A warm job skips straight to
//!    the sweep; concurrent cold jobs of the same key single-flight the
//!    build. Counters: `cache.hit`, `cache.miss`, `cache.bytes`.
//! 2. **Admission** — before the sweep, the job's device-pool footprint
//!    (the perfmodel memory model for its problem plus
//!    [`antmoc_perfmodel::advise_tallies`]' tally-buffer bytes) must fit
//!    the configured budget alongside the jobs already in flight;
//!    otherwise the job queues. Wait time (queue + admission) lands in
//!    the `serve.queue_wait_ns` histogram; the high-water mark of
//!    admitted bytes in the `serve.inflight_peak_bytes` gauge proves the
//!    pool was never overcommitted.
//! 3. **Solve, on a pooled arena** — per-job solver state lives in a
//!    [`SweepArena`] checked out of a shared pool and returned after the
//!    solve; [`SweepArena::reconfigure`] + per-sweep `prepare` make reuse
//!    safe across different problem shapes and kernel configs.
//!
//! Determinism: a job's report is **bitwise identical** to a one-shot
//! [`antmoc::run`] of the same configuration at the same worker count.
//! The sweep's parallel regions are scoped thread teams with static
//! partitioning (see the rayon shim), so concurrent jobs never share
//! scheduler state; each service worker either inherits the environment
//! worker count (like one-shot runs) or pins one via
//! [`ServeConfig::solve_threads`].

pub mod cache;

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use antmoc::pipeline::SolveSetup;
use antmoc::{RunConfig, RunReport};
use antmoc_input::CaseSpec;
use antmoc_perfmodel::{advise_tallies, MemoryModel, TallyAdvice};
use antmoc_solver::SweepArena;
use antmoc_telemetry::{Json, Telemetry};

use cache::SetupCache;

/// Service-level configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the job queue — the number of jobs that
    /// can be *running* (setup/solve) at once, admission permitting.
    pub workers: usize,
    /// The simulated device pool the admission controller guards: the
    /// summed footprint of in-flight jobs never exceeds this. A job
    /// larger than the whole pool runs exclusively (alone) rather than
    /// being rejected.
    pub device_pool_bytes: u64,
    /// Setups retained in the content-addressed cache (FIFO eviction);
    /// 0 disables caching entirely.
    pub max_cached_setups: usize,
    /// Worker count each job's sweep regions use. `None` inherits the
    /// environment (`ANTMOC_NUM_THREADS` / available cores) exactly like
    /// a one-shot run — the setting that keeps service reports bitwise
    /// identical to serial runs.
    pub solve_threads: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { workers: 2, device_pool_bytes: 4 << 30, max_cached_setups: 8, solve_threads: None }
    }
}

/// A solve request in any of the accepted input formats.
pub enum SolveRequest {
    /// An already-parsed configuration.
    Config(Box<RunConfig>),
    /// INI-style configuration text ([`RunConfig::parse`]).
    Ini(String),
    /// Declarative case TOML ([`CaseSpec::parse`] +
    /// [`RunConfig::from_case`]).
    CaseToml(String),
}

impl SolveRequest {
    fn into_config(self) -> Result<RunConfig, SubmitError> {
        match self {
            SolveRequest::Config(c) => Ok(*c),
            SolveRequest::Ini(text) => {
                RunConfig::parse(&text).map_err(|e| SubmitError(e.to_string()))
            }
            SolveRequest::CaseToml(text) => {
                let spec = CaseSpec::parse(&text)
                    .map_err(|e| SubmitError(format!("case line {}: {}", e.line, e.message)))?;
                RunConfig::from_case(&spec).map_err(|e| SubmitError(e.to_string()))
            }
        }
    }
}

/// A request the service refused to enqueue (parse failure or an
/// unsupported configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitError(pub String);

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SubmitError {}

/// Why a job failed after admission.
#[derive(Debug, Clone)]
pub enum JobError {
    /// The solve panicked; the payload is the panic message. Other jobs
    /// are unaffected (the worker survives).
    Panicked(String),
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobError::Panicked(msg) => write!(f, "solve panicked: {msg}"),
        }
    }
}

/// Per-job measurements, for gates and dashboards.
#[derive(Debug, Clone, Default)]
pub struct JobStats {
    /// Whether the setup came out of the content cache.
    pub cache_hit: bool,
    /// Submit-to-pickup plus admission wait, seconds (what
    /// `serve.queue_wait_ns` records).
    pub queue_wait_s: f64,
    /// Time in the setup stage (cache lookup + build on a miss).
    pub setup_s: f64,
    /// Time in transport + output.
    pub solve_s: f64,
    /// The admission footprint charged against the device pool.
    pub footprint_bytes: u64,
}

/// The terminal state of one job.
pub struct JobResult {
    pub job_id: u64,
    pub outcome: Result<RunReport, JobError>,
    pub stats: JobStats,
}

/// A claim ticket for a submitted job.
#[derive(Debug)]
pub struct JobHandle {
    pub job_id: u64,
    rx: mpsc::Receiver<JobResult>,
}

impl JobHandle {
    /// Blocks until the job completes.
    pub fn wait(self) -> JobResult {
        self.rx.recv().expect("service dropped the job without replying")
    }
}

struct Job {
    id: u64,
    config: RunConfig,
    enqueued: Instant,
    tx: mpsc::Sender<JobResult>,
}

struct QueueState {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

/// The admission controller: a byte-budget semaphore over the simulated
/// device pool.
struct Admission {
    budget: u64,
    in_use: Mutex<u64>,
    cv: Condvar,
    peak: AtomicU64,
}

struct AdmissionPermit<'a> {
    admission: &'a Admission,
    bytes: u64,
}

impl Admission {
    fn new(budget: u64) -> Self {
        Self { budget, in_use: Mutex::new(0), cv: Condvar::new(), peak: AtomicU64::new(0) }
    }

    /// Blocks until `bytes` fit alongside the in-flight jobs, then
    /// charges them. A job bigger than the whole pool is admitted only
    /// when the pool is empty (exclusive run), never rejected — but its
    /// overshoot is visible in `serve.inflight_peak_bytes`.
    fn admit(&self, bytes: u64) -> (AdmissionPermit<'_>, std::time::Duration) {
        let t = Instant::now();
        let mut used = self.in_use.lock().unwrap();
        while !(*used + bytes <= self.budget || (*used == 0 && bytes > self.budget)) {
            used = self.cv.wait(used).unwrap();
        }
        *used += bytes;
        self.peak.fetch_max(*used, Ordering::Relaxed);
        let now_used = *used;
        drop(used);
        let tel = Telemetry::global();
        tel.gauge_set("serve.inflight_bytes", now_used as f64);
        tel.gauge_set("serve.inflight_peak_bytes", self.peak.load(Ordering::Relaxed) as f64);
        (AdmissionPermit { admission: self, bytes }, t.elapsed())
    }

    fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        let mut used = self.admission.in_use.lock().unwrap();
        *used -= self.bytes;
        let now_used = *used;
        drop(used);
        Telemetry::global().gauge_set("serve.inflight_bytes", now_used as f64);
        self.admission.cv.notify_all();
    }
}

struct Shared {
    queue: Mutex<QueueState>,
    cv: Condvar,
    cache: SetupCache,
    arenas: Mutex<Vec<SweepArena>>,
    admission: Admission,
    solve_threads: Option<usize>,
    next_id: AtomicU64,
}

/// The long-running solve service. Dropping it (or calling
/// [`SolveService::shutdown`]) drains the queue and joins the workers.
pub struct SolveService {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl SolveService {
    pub fn new(config: ServeConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(QueueState { jobs: VecDeque::new(), shutdown: false }),
            cv: Condvar::new(),
            cache: SetupCache::new(config.max_cached_setups),
            arenas: Mutex::new(Vec::new()),
            admission: Admission::new(config.device_pool_bytes.max(1)),
            solve_threads: config.solve_threads,
            next_id: AtomicU64::new(1),
        });
        let workers = (0..config.workers.max(1))
            .map(|w| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("antmoc-serve-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn service worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Validates and enqueues a request; returns a handle to wait on.
    /// Decomposed configurations are refused — setup sharing (and with it
    /// the whole service model) is single-domain.
    pub fn submit(&self, request: SolveRequest) -> Result<JobHandle, SubmitError> {
        let config = request.into_config()?;
        if config.decomposition != (1, 1, 1) {
            return Err(SubmitError(
                "the solve service runs single-domain jobs; submit decomposed runs as one-shot \
                 `antmoc::run` calls"
                    .into(),
            ));
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = mpsc::channel();
        let job = Job { id, config, enqueued: Instant::now(), tx };
        let mut q = self.shared.queue.lock().unwrap();
        if q.shutdown {
            return Err(SubmitError("service is shutting down".into()));
        }
        q.jobs.push_back(job);
        drop(q);
        self.shared.cv.notify_one();
        Ok(JobHandle { job_id: id, rx })
    }

    /// The high-water mark of concurrently admitted footprint bytes —
    /// the "never overcommitted" witness (compare against the configured
    /// pool).
    pub fn peak_inflight_bytes(&self) -> u64 {
        self.shared.admission.peak_bytes()
    }

    /// Ready setups currently cached.
    pub fn cached_setups(&self) -> usize {
        self.shared.cache.len()
    }

    /// Finishes queued jobs, then stops the workers and joins them.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.queue.lock().unwrap().shutdown = true;
        self.shared.cv.notify_all();
    }
}

impl Drop for SolveService {
    fn drop(&mut self) {
        self.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.cv.wait(q).unwrap();
            }
        };
        let tx = job.tx.clone();
        let id = job.id;
        let result = run_job(shared, job);
        let _ = tx.send(JobResult { job_id: id, ..result });
    }
}

/// The per-job footprint charged against the device pool: the memory
/// model's working set for the problem (tracks, 2D segments, boundary
/// and scalar flux), the resident 3D segment store, the exp table, and
/// the tally buffers the sweep will allocate (privatized per-worker
/// copies when they fit the job's own tally budget, per
/// [`advise_tallies`] — the same decision the arena makes).
fn job_footprint(config: &RunConfig, setup: &SolveSetup, workers: usize) -> u64 {
    let p = &setup.problem;
    let mm = MemoryModel {
        n_2d_tracks: p.layout.num_2d_tracks() as u64,
        n_3d_tracks: p.num_tracks() as u64,
        n_2d_segments: p.layout.num_2d_segments() as u64,
        n_3d_segments_stored: 0, // counted via stored_bytes below
        n_fsrs: p.num_fsrs() as u64,
        num_groups: p.num_groups() as u64,
        fixed: 0,
    };
    let tally_bytes = match advise_tallies(
        workers,
        p.num_fsrs(),
        p.num_groups(),
        config.kernel.tally_budget_bytes,
    ) {
        TallyAdvice::Privatized { bytes } => bytes,
        TallyAdvice::Atomic { .. } => (p.num_fsrs() * p.num_groups() * 8) as u64,
    };
    let exp_bytes = setup.exp_table.as_ref().map(|t| t.bytes()).unwrap_or(0);
    mm.total_bytes() + setup.segsrc.stored_bytes() + exp_bytes + tally_bytes
}

/// Rough resident size of a cached setup, for the `cache.bytes` counter.
fn setup_bytes(setup: &SolveSetup) -> u64 {
    let p = &setup.problem;
    let mm = MemoryModel {
        n_2d_tracks: p.layout.num_2d_tracks() as u64,
        n_3d_tracks: p.num_tracks() as u64,
        n_2d_segments: p.layout.num_2d_segments() as u64,
        n_3d_segments_stored: 0,
        n_fsrs: p.num_fsrs() as u64,
        num_groups: p.num_groups() as u64,
        fixed: 0,
    };
    mm.total_bytes()
        + setup.segsrc.stored_bytes()
        + setup.exp_table.as_ref().map(|t| t.bytes()).unwrap_or(0)
}

fn run_job(shared: &Shared, job: Job) -> JobResult {
    let tel = Telemetry::global();
    let Job { id, config, enqueued, .. } = job;
    let pickup_wait = enqueued.elapsed();
    let _scope = tel.trace_scope(
        "serve.job",
        &[("job", Json::Uint(id)), ("case", Json::Str(config.case_name.clone()))],
    );
    tel.counter_add("serve.jobs", 1);

    // Stage 1: content-addressed setup.
    let key = cache::cache_key(&config);
    let t_setup = Instant::now();
    let built = catch_unwind(AssertUnwindSafe(|| {
        shared.cache.get_or_build(key, || antmoc::build_setup(&config))
    }));
    let (setup, cache_hit) = match built {
        Ok(pair) => pair,
        Err(panic) => {
            return JobResult {
                job_id: id,
                outcome: Err(JobError::Panicked(panic_message(panic))),
                stats: JobStats { queue_wait_s: pickup_wait.as_secs_f64(), ..Default::default() },
            }
        }
    };
    let setup_s = t_setup.elapsed().as_secs_f64();
    if cache_hit {
        tel.counter_add("cache.hit", 1);
    } else {
        tel.counter_add("cache.miss", 1);
        tel.counter_add("cache.bytes", setup_bytes(&setup));
    }

    // Stage 2: admission against the device pool.
    let solve_workers = shared.solve_threads.unwrap_or_else(rayon::current_num_threads);
    let footprint = job_footprint(&config, &setup, solve_workers);
    let (permit, admission_wait) = shared.admission.admit(footprint);
    let queue_wait = pickup_wait + admission_wait;
    tel.histogram_record("serve.queue_wait_ns", queue_wait.as_nanos() as u64);

    // Stage 3: solve on a pooled arena.
    let arena = shared
        .arenas
        .lock()
        .unwrap()
        .pop()
        .unwrap_or_else(|| SweepArena::new(config.kernel.clone()));
    let t_solve = Instant::now();
    let solved = catch_unwind(AssertUnwindSafe(|| match shared.solve_threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
            .install(|| antmoc::run_with_setup_arena(&config, &setup, arena)),
        None => antmoc::run_with_setup_arena(&config, &setup, arena),
    }));
    let solve_s = t_solve.elapsed().as_secs_f64();
    drop(permit);

    let outcome = match solved {
        Ok((report, arena)) => {
            let mut pool = shared.arenas.lock().unwrap();
            // A few spare arenas cover the worker pool; beyond that,
            // freeing beats hoarding (mirrors the phi pool's policy).
            if pool.len() < 4 {
                pool.push(arena);
            }
            Ok(report)
        }
        // The arena checked out by a panicked solve is dropped with the
        // panic payload; the pool refills lazily.
        Err(panic) => Err(JobError::Panicked(panic_message(panic))),
    };

    JobResult {
        job_id: id,
        outcome,
        stats: JobStats {
            cache_hit,
            queue_wait_s: queue_wait.as_secs_f64(),
            setup_s,
            solve_s,
            footprint_bytes: footprint,
        },
    }
}

fn panic_message(panic: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

/// A canonical, bit-exact rendering of the physics outputs of a report —
/// the identity the service guarantees against one-shot runs. Floats are
/// rendered as exact bit patterns: two reports have equal signatures iff
/// keff, iteration count, convergence, pin rates, and per-material fluxes
/// are bitwise identical. Timings and other wall-clock fields are
/// excluded by construction.
pub fn report_signature(report: &RunReport) -> String {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(1024);
    let _ = write!(
        s,
        "keff={:016x};it={};conv={};fsrs={};t2={};t3={};seg3={};",
        report.keff.to_bits(),
        report.iterations,
        report.converged,
        report.num_fsrs,
        report.num_2d_tracks,
        report.num_3d_tracks,
        report.num_3d_segments
    );
    let _ = write!(s, "pins=");
    for (addr, rate) in report.pin_rates.entries() {
        let _ = write!(
            s,
            "{}.{}/{}.{}:{:016x},",
            addr.assembly.0,
            addr.assembly.1,
            addr.pin.0,
            addr.pin.1,
            rate.to_bits()
        );
    }
    let _ = write!(s, ";flux=");
    for (mat, flux) in &report.material_flux {
        let _ = write!(s, "{mat}:");
        for v in flux {
            let _ = write!(s, "{:016x},", v.to_bits());
        }
        let _ = write!(s, "|");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_ini() -> String {
        "[model]\naxial_dz = 64.26\n[tracks]\nnum_azim = 4\nradial_spacing = 2.5\nnum_polar = 2\n\
         axial_spacing = 60.0\n[solver]\ntolerance = 1e-3\nmax_iterations = 60\nmode = otf\n\
         backend = cpu\n"
            .to_string()
    }

    #[test]
    fn submit_rejects_malformed_and_decomposed_requests() {
        let service = SolveService::new(ServeConfig { workers: 1, ..Default::default() });
        assert!(service.submit(SolveRequest::Ini("[tracks]\nnum_azim = banana\n".into())).is_err());
        let mut cfg = RunConfig::default();
        cfg.decomposition = (2, 1, 1);
        let err = service.submit(SolveRequest::Config(Box::new(cfg))).unwrap_err();
        assert!(err.0.contains("single-domain"), "{err}");
        service.shutdown();
    }

    #[test]
    fn service_report_is_bitwise_identical_to_one_shot_run() {
        let config = RunConfig::parse(&tiny_ini()).unwrap();
        let serial = antmoc::run(&config);
        let service = SolveService::new(ServeConfig { workers: 2, ..Default::default() });
        let handles: Vec<_> =
            (0..3).map(|_| service.submit(SolveRequest::Ini(tiny_ini())).unwrap()).collect();
        for h in handles {
            let result = h.wait();
            let report = result.outcome.expect("job solved");
            assert_eq!(
                report_signature(&report),
                report_signature(&serial),
                "service job diverged from the one-shot run"
            );
        }
        service.shutdown();
    }

    #[test]
    fn warm_jobs_hit_the_cache() {
        let service = SolveService::new(ServeConfig { workers: 1, ..Default::default() });
        let cold = service.submit(SolveRequest::Ini(tiny_ini())).unwrap().wait();
        assert!(!cold.stats.cache_hit);
        let warm = service.submit(SolveRequest::Ini(tiny_ini())).unwrap().wait();
        assert!(warm.stats.cache_hit, "identical config must reuse the setup");
        assert!(warm.stats.setup_s <= cold.stats.setup_s);
        assert_eq!(service.cached_setups(), 1);
        service.shutdown();
    }

    #[test]
    fn admission_serializes_over_budget_job_mixes() {
        // A pool sized for ~1.5 jobs: two concurrent jobs must never be
        // in flight together, and the peak proves it.
        let config = RunConfig::parse(&tiny_ini()).unwrap();
        let setup = antmoc::build_setup(&config);
        let one = job_footprint(&config, &setup, rayon::current_num_threads());
        let service = SolveService::new(ServeConfig {
            workers: 4,
            device_pool_bytes: one + one / 2,
            ..Default::default()
        });
        let handles: Vec<_> =
            (0..4).map(|_| service.submit(SolveRequest::Ini(tiny_ini())).unwrap()).collect();
        for h in handles {
            assert!(h.wait().outcome.is_ok());
        }
        let peak = service.peak_inflight_bytes();
        assert!(peak <= one + one / 2, "pool overcommitted: peak {peak} budget {}", one + one / 2);
        assert!(peak >= one, "at least one job must have been admitted");
        service.shutdown();
    }

    #[test]
    fn panicked_jobs_fail_cleanly_and_the_worker_survives() {
        let service = SolveService::new(ServeConfig { workers: 1, ..Default::default() });
        // An axial model whose dz exceeds the span produces no axial
        // cells... actually an unknown material cannot happen post-parse,
        // so force a panic through an impossible track spec instead.
        let mut cfg = RunConfig::parse(&tiny_ini()).unwrap();
        cfg.tracks.num_azim = 0; // violates the tracker's contract
        let r = service.submit(SolveRequest::Config(Box::new(cfg))).unwrap().wait();
        assert!(matches!(r.outcome, Err(JobError::Panicked(_))));
        // The worker is still alive and solves the next job.
        let ok = service.submit(SolveRequest::Ini(tiny_ini())).unwrap().wait();
        assert!(ok.outcome.is_ok());
        service.shutdown();
    }
}
