//! The machine-readable run artifact: every figure in the paper is read
//! off per-phase wall times, throughput counters, and memory/traffic
//! gauges, and `RunReport` is the one place they all land.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

use crate::hist::HistogramSummary;
use crate::json::{parse, Json, ParseError};

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanStats {
    /// Number of completed span guards.
    pub count: u64,
    /// Total wall seconds across all completions.
    pub total_s: f64,
    /// Shortest single completion.
    pub min_s: f64,
    /// Longest single completion.
    pub max_s: f64,
}

impl SpanStats {
    pub(crate) fn record(&mut self, seconds: f64) {
        if self.count == 0 {
            self.min_s = seconds;
            self.max_s = seconds;
        } else {
            self.min_s = self.min_s.min(seconds);
            self.max_s = self.max_s.max(seconds);
        }
        self.count += 1;
        self.total_s += seconds;
    }

    /// Mean seconds per completion.
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_s / self.count as f64
        }
    }
}

/// Last-written and high-water values for one gauge.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GaugeStats {
    pub last: f64,
    pub high_water: f64,
}

/// The serializable snapshot of a run's telemetry.
///
/// JSON schema (all sections optional-but-present, keys sorted):
/// ```json
/// {
///   "meta":       { "<key>": <string|number>, ... },
///   "spans":      { "<path>": {"count": N, "total_s": S, "min_s": S,
///                              "max_s": S}, ... },
///   "counters":   { "<name>": N, ... },
///   "gauges":     { "<name>": {"last": V, "high_water": V}, ... },
///   "histograms": { "<name>": {"count": N, "p50": V, "p90": V,
///                              "p99": V, "max": V}, ... },
///   "iterations": [ { "it": N, ... }, ... ],
///   "sections":   { "<name>": <free-form JSON>, ... }
/// }
/// ```
/// Span paths are `/`-separated nesting chains (e.g.
/// `eigen/transport_sweep`). Counters are event totals (segments swept,
/// bytes sent); gauges are level samples with a retained high-water mark
/// (resident bytes, pool usage). `histograms` carries quantile summaries
/// of log-bucketed distributions (per-track sweep nanoseconds, steal-loop
/// wait, comm receive wait — always integer-valued, typically ns).
/// `iterations` is the per-iteration convergence series: one free-form
/// row per solver iteration (k-eff, residual, sweep seconds, checkpoint
/// markers), in execution order. `sections` carries adjacent artifacts —
/// the solver's neutron-balance report, the run summary — so one file
/// describes the whole run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunReport {
    /// Free-form identification: case name, configuration, hostname.
    pub meta: BTreeMap<String, Json>,
    pub spans: BTreeMap<String, SpanStats>,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, GaugeStats>,
    /// Quantile summaries of the log-bucketed histograms.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Per-iteration convergence rows, in execution order.
    pub iterations: Vec<Json>,
    /// Adjacent machine-readable artifacts merged into this report.
    pub sections: BTreeMap<String, Json>,
}

impl RunReport {
    /// Sets a metadata string.
    pub fn set_meta(&mut self, key: &str, value: &str) {
        self.meta.insert(key.to_string(), Json::Str(value.to_string()));
    }

    /// Sets a metadata number.
    pub fn set_meta_num(&mut self, key: &str, value: f64) {
        self.meta.insert(key.to_string(), Json::Num(value));
    }

    /// Attaches a free-form JSON section (e.g. the neutron-balance
    /// report) to the artifact.
    pub fn set_section(&mut self, name: &str, value: Json) {
        self.sections.insert(name.to_string(), value);
    }

    /// Seconds spent in a span path, 0 if absent.
    pub fn span_seconds(&self, path: &str) -> f64 {
        self.spans.get(path).map(|s| s.total_s).unwrap_or(0.0)
    }

    /// Counter value, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn to_json(&self) -> Json {
        let meta = self.meta.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        let spans = self
            .spans
            .iter()
            .map(|(k, s)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Uint(s.count)),
                        ("total_s".into(), Json::Num(s.total_s)),
                        ("min_s".into(), Json::Num(s.min_s)),
                        ("max_s".into(), Json::Num(s.max_s)),
                    ]),
                )
            })
            .collect();
        let counters = self.counters.iter().map(|(k, &v)| (k.clone(), Json::Uint(v))).collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, g)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("last".into(), Json::Num(g.last)),
                        ("high_water".into(), Json::Num(g.high_water)),
                    ]),
                )
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    Json::Obj(vec![
                        ("count".into(), Json::Uint(h.count)),
                        ("p50".into(), Json::Uint(h.p50)),
                        ("p90".into(), Json::Uint(h.p90)),
                        ("p99".into(), Json::Uint(h.p99)),
                        ("max".into(), Json::Uint(h.max)),
                    ]),
                )
            })
            .collect();
        let iterations = self.iterations.to_vec();
        let sections = self.sections.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        Json::Obj(vec![
            ("meta".into(), Json::Obj(meta)),
            ("spans".into(), Json::Obj(spans)),
            ("counters".into(), Json::Obj(counters)),
            ("gauges".into(), Json::Obj(gauges)),
            ("histograms".into(), Json::Obj(histograms)),
            ("iterations".into(), Json::Arr(iterations)),
            ("sections".into(), Json::Obj(sections)),
        ])
    }

    pub fn to_json_string(&self) -> String {
        self.to_json().to_pretty_string()
    }

    /// Parses a report previously produced by [`Self::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<Self, ParseError> {
        let doc = parse(text)?;
        let bad = |message: &str| ParseError { offset: 0, message: message.to_string() };
        let mut report = RunReport::default();
        if let Some(Json::Obj(pairs)) = doc.get("meta") {
            for (k, v) in pairs {
                report.meta.insert(k.clone(), v.clone());
            }
        }
        if let Some(Json::Obj(pairs)) = doc.get("spans") {
            for (k, v) in pairs {
                let field = |name: &str| {
                    v.get(name)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad(&format!("span {k} missing {name}")))
                };
                report.spans.insert(
                    k.clone(),
                    SpanStats {
                        count: v
                            .get("count")
                            .and_then(Json::as_u64)
                            .ok_or_else(|| bad(&format!("span {k} missing count")))?,
                        total_s: field("total_s")?,
                        min_s: field("min_s")?,
                        max_s: field("max_s")?,
                    },
                );
            }
        }
        if let Some(Json::Obj(pairs)) = doc.get("counters") {
            for (k, v) in pairs {
                let value = v.as_u64().ok_or_else(|| bad(&format!("counter {k} not unsigned")))?;
                report.counters.insert(k.clone(), value);
            }
        }
        if let Some(Json::Obj(pairs)) = doc.get("gauges") {
            for (k, v) in pairs {
                // Non-finite gauge values serialize as `null` (see
                // `json::write_f64`); round-trip those back to a skipped
                // gauge instead of rejecting the whole report.
                if matches!(v.get("last"), Some(Json::Null))
                    || matches!(v.get("high_water"), Some(Json::Null))
                {
                    continue;
                }
                let field = |name: &str| {
                    v.get(name)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| bad(&format!("gauge {k} missing {name}")))
                };
                report.gauges.insert(
                    k.clone(),
                    GaugeStats { last: field("last")?, high_water: field("high_water")? },
                );
            }
        }
        if let Some(Json::Obj(pairs)) = doc.get("histograms") {
            for (k, v) in pairs {
                let field = |name: &str| {
                    v.get(name)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad(&format!("histogram {k} missing {name}")))
                };
                report.histograms.insert(
                    k.clone(),
                    HistogramSummary {
                        count: field("count")?,
                        p50: field("p50")?,
                        p90: field("p90")?,
                        p99: field("p99")?,
                        max: field("max")?,
                    },
                );
            }
        }
        if let Some(Json::Arr(rows)) = doc.get("iterations") {
            report.iterations = rows.clone();
        }
        if let Some(Json::Obj(pairs)) = doc.get("sections") {
            for (k, v) in pairs {
                report.sections.insert(k.clone(), v.clone());
            }
        }
        Ok(report)
    }

    /// A canonical rendering of the report's **deterministic** content —
    /// the bitwise-identity contract between a one-shot run and the same
    /// case run as a scoped service job.
    ///
    /// Wall-clock measurements can never match across runs, and a work-
    /// stealing scheduler makes steal/contention tallies load-dependent
    /// even at fixed inputs. Everything else must be bit-identical, so
    /// the digest covers:
    ///
    /// * **meta** — every entry, floats as exact bit patterns;
    /// * **spans** — path and completion count (no seconds);
    /// * **counters/gauges/histogram summaries** — exact values (gauge
    ///   floats as bit patterns), excluding time-valued keys (suffixes
    ///   `_ns`/`_us`/`_ms`/`_s`/`_seconds`) and scheduling-noise keys
    ///   (see [`is_digest_excluded`]);
    /// * **iterations** — every row in order, with time-valued and
    ///   contention fields scrubbed;
    /// * **sections** — full content with time-valued object fields
    ///   scrubbed recursively; the per-worker `sweep_workers` section is
    ///   dropped wholesale (its item split is scheduling-dependent).
    ///
    /// Two reports with equal digests agree on every deterministic
    /// metric bit-for-bit. The rendering is line-oriented so a failed
    /// comparison diffs readably.
    pub fn deterministic_digest(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (k, v) in &self.meta {
            let _ = write!(out, "meta {k}=");
            write_canonical_json(v, &mut out);
            out.push('\n');
        }
        for (path, s) in &self.spans {
            let _ = writeln!(out, "span {path} count={}", s.count);
        }
        for (k, v) in self.counters.iter().filter(|(k, _)| !is_digest_excluded(k)) {
            let _ = writeln!(out, "counter {k} {v}");
        }
        for (k, g) in self.gauges.iter().filter(|(k, _)| !is_digest_excluded(k)) {
            let _ = writeln!(
                out,
                "gauge {k} last={:016x} high={:016x}",
                g.last.to_bits(),
                g.high_water.to_bits()
            );
        }
        for (k, h) in self.histograms.iter().filter(|(k, _)| !is_digest_excluded(k)) {
            let _ = writeln!(
                out,
                "hist {k} count={} p50={} p90={} p99={} max={}",
                h.count, h.p50, h.p90, h.p99, h.max
            );
        }
        for (i, row) in self.iterations.iter().enumerate() {
            let _ = write!(out, "iter {i} ");
            write_canonical_json(&scrub_json(row), &mut out);
            out.push('\n');
        }
        for (k, v) in self.sections.iter().filter(|(k, _)| k.as_str() != "sweep_workers") {
            let _ = write!(out, "section {k} ");
            write_canonical_json(&scrub_json(v), &mut out);
            out.push('\n');
        }
        out
    }

    /// Writes the pretty JSON artifact, creating parent directories.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json_string().as_bytes())
    }
}

/// Metric keys excluded from [`RunReport::deterministic_digest`]:
/// wall-clock-valued keys (time-unit suffixes) and keys whose magnitude
/// depends on scheduling or hardware contention rather than the case
/// being solved (steal traffic, CAS retries, receive-wait shapes, trace
/// bookkeeping). Mirrors the spirit of `report_diff`'s noisy-key list.
pub fn is_digest_excluded(key: &str) -> bool {
    const TIME_SUFFIXES: &[&str] = &["_ns", "_us", "_ms", "_s", "_seconds"];
    const NOISE_PREFIXES: &[&str] = &[
        "sweep.steal",
        "sweep.cas",
        "sweep.load_ratio",
        "sweep.worker_busy",
        "sweep.tally_bytes",
        "comm.retries",
        "comm.recv",
        "comm.collective_wait",
        "comm.overlap",
        "trace.",
    ];
    TIME_SUFFIXES.iter().any(|s| key.ends_with(s))
        || NOISE_PREFIXES.iter().any(|p| key.starts_with(p))
}

/// Iteration-row fields scrubbed from the digest: per-iteration timings
/// and contention tallies.
fn is_row_field_excluded(key: &str) -> bool {
    is_digest_excluded(key)
        || matches!(key, "cas_retries" | "steals" | "steal_attempts" | "load_ratio")
}

/// Recursively drops excluded object fields from free-form JSON (rows,
/// sections) so only deterministic content reaches the digest.
fn scrub_json(value: &Json) -> Json {
    match value {
        Json::Obj(pairs) => Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| !is_row_field_excluded(k))
                .map(|(k, v)| (k.clone(), scrub_json(v)))
                .collect(),
        ),
        Json::Arr(items) => Json::Arr(items.iter().map(scrub_json).collect()),
        other => other.clone(),
    }
}

/// Canonical, bit-exact JSON rendering for digests: floats print as hex
/// bit patterns (the pretty printer's shortest-roundtrip form is also
/// exact, but bits make mismatches unambiguous in a diff).
fn write_canonical_json(value: &Json, out: &mut String) {
    use std::fmt::Write as _;
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Json::Uint(u) => {
            let _ = write!(out, "{u}");
        }
        Json::Num(n) => {
            let _ = write!(out, "f64:{:016x}", n.to_bits());
        }
        Json::Str(s) => {
            let _ = write!(out, "{s:?}");
        }
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_canonical_json(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{k:?}:");
                write_canonical_json(v, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut r = RunReport::default();
        r.set_meta("case", "c5g7-quickstart");
        r.set_meta_num("tolerance", 1e-4);
        r.spans.insert(
            "eigen/transport_sweep".into(),
            SpanStats { count: 12, total_s: 3.25, min_s: 0.2, max_s: 0.4 },
        );
        r.counters.insert("sweep.segments".into(), 123_456_789_012);
        r.gauges
            .insert("device.pool_bytes".into(), GaugeStats { last: 1024.0, high_water: 4096.0 });
        r.histograms.insert(
            "sweep.track_ns".into(),
            HistogramSummary { count: 4200, p50: 1500, p90: 3100, p99: 8200, max: 12345 },
        );
        r.iterations.push(Json::Obj(vec![
            // Int, not Uint: free-form rows compare structurally after a
            // round trip, and the parser canonicalizes small integers.
            ("it".into(), Json::Int(1)),
            ("k".into(), Json::Num(1.05)),
            ("residual".into(), Json::Num(3.2e-3)),
        ]));
        r.set_section("balance", Json::Obj(vec![("k_balance".into(), Json::Num(1.18))]));
        r
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample_report();
        let text = r.to_json_string();
        let back = RunReport::from_json_str(&text).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn accessors_default_to_zero() {
        let r = RunReport::default();
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.span_seconds("missing"), 0.0);
    }

    #[test]
    fn span_stats_track_min_max_mean() {
        let mut s = SpanStats::default();
        s.record(2.0);
        s.record(4.0);
        s.record(3.0);
        assert_eq!(s.count, 3);
        assert_eq!(s.min_s, 2.0);
        assert_eq!(s.max_s, 4.0);
        assert!((s.mean_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn malformed_reports_are_rejected() {
        assert!(RunReport::from_json_str("{").is_err());
        let text = r#"{"counters": {"neg": -5}}"#;
        assert!(RunReport::from_json_str(text).is_err());
        // Histogram summaries must be complete unsigned integers.
        let text = r#"{"histograms": {"h": {"count": 1, "p50": 2}}}"#;
        assert!(RunReport::from_json_str(text).is_err());
    }

    #[test]
    fn null_gauge_round_trips_to_a_skipped_gauge() {
        // Non-finite gauge values serialize as null; parsing must skip
        // the gauge, not reject the report.
        let mut r = sample_report();
        r.gauges.insert("bad.ratio".into(), GaugeStats { last: f64::NAN, high_water: f64::NAN });
        let text = r.to_json_string();
        assert!(text.contains("null"), "non-finite gauges serialize as null");
        let back = RunReport::from_json_str(&text).unwrap();
        assert!(!back.gauges.contains_key("bad.ratio"), "null gauge must be skipped");
        // Everything else survives the trip.
        assert!(back.gauges.contains_key("device.pool_bytes"));
        let mut expect = r.clone();
        expect.gauges.remove("bad.ratio");
        assert_eq!(back, expect);
    }

    #[test]
    fn digest_ignores_wall_clock_but_keeps_content() {
        let mut a = sample_report();
        let mut b = sample_report();
        // Divergent wall time, identical work.
        b.spans.get_mut("eigen/transport_sweep").unwrap().total_s *= 7.5;
        b.spans.get_mut("eigen/transport_sweep").unwrap().max_s += 1.0;
        a.counters.insert("sweep.steals".into(), 17);
        b.counters.insert("sweep.steals".into(), 3);
        a.histograms.insert(
            "sweep.track_ns".into(),
            HistogramSummary { count: 10, p50: 1, p90: 2, p99: 3, max: 4 },
        );
        b.histograms.remove("sweep.track_ns");
        a.iterations[0] = Json::Obj(vec![
            ("it".into(), Json::Int(1)),
            ("k".into(), Json::Num(1.05)),
            ("residual".into(), Json::Num(3.2e-3)),
            ("sweep_s".into(), Json::Num(0.123)),
            ("cas_retries".into(), Json::Uint(42)),
        ]);
        b.iterations[0] = Json::Obj(vec![
            ("it".into(), Json::Int(1)),
            ("k".into(), Json::Num(1.05)),
            ("residual".into(), Json::Num(3.2e-3)),
            ("sweep_s".into(), Json::Num(9.9)),
            ("cas_retries".into(), Json::Uint(7)),
        ]);
        assert_eq!(a.deterministic_digest(), b.deterministic_digest());

        // Deterministic content differences must show.
        b.counters.insert("sweep.segments".into(), 1);
        assert_ne!(a.deterministic_digest(), b.deterministic_digest());
    }

    #[test]
    fn digest_is_exact_on_float_bits() {
        let mut a = sample_report();
        let mut b = sample_report();
        a.set_meta_num("tolerance", 1e-4);
        b.set_meta_num("tolerance", 1e-4 + f64::EPSILON * 1e-4);
        assert_ne!(
            a.deterministic_digest(),
            b.deterministic_digest(),
            "a one-ulp meta difference must change the digest"
        );
    }

    #[test]
    fn digest_drops_the_per_worker_section() {
        let mut a = sample_report();
        let mut b = sample_report();
        a.set_section("sweep_workers", Json::Obj(vec![("items".into(), Json::Uint(10))]));
        b.set_section("sweep_workers", Json::Obj(vec![("items".into(), Json::Uint(99))]));
        assert_eq!(a.deterministic_digest(), b.deterministic_digest());
        // Deterministic sections still count.
        b.set_section("balance", Json::Obj(vec![("k_balance".into(), Json::Num(2.0))]));
        assert_ne!(a.deterministic_digest(), b.deterministic_digest());
    }

    #[test]
    fn histograms_and_iterations_round_trip() {
        let r = sample_report();
        let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back.histograms["sweep.track_ns"].p99, 8200);
        assert_eq!(back.iterations.len(), 1);
        assert_eq!(back.iterations[0].get("it").and_then(Json::as_u64), Some(1));
        assert_eq!(back, r);
    }
}
