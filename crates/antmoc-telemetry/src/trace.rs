//! Bounded per-thread event timelines exported as Chrome `trace_event`
//! JSON (loadable in `chrome://tracing` or Perfetto).
//!
//! Aggregate spans answer "how long did sweeps take overall"; a timeline
//! answers "what was worker 3 doing while worker 0 finished its slice" —
//! the view the paper's load-balance analysis (§5.4) is really about.
//! Design constraints, in order:
//!
//! 1. **The hot path must never block or allocate when tracing is off.**
//!    Every recording call starts with one relaxed atomic load; disabled
//!    tracing costs nothing else.
//! 2. **Memory is hard-capped.** A global event budget is reserved with a
//!    compare-exchange before any event is stored; once the budget is
//!    spent, new events are counted in `trace.dropped` and discarded —
//!    deterministically, oldest events win.
//! 3. **Threads do not contend.** Each thread appends to its own buffer
//!    behind its own (uncontended) mutex; the only shared write is the
//!    budget reservation.
//!
//! Events are `ph: "X"` complete slices (begin + duration in one record,
//! so a dropped end cannot orphan a begin) and `ph: "i"` instants. The
//! exporter emits the standard object form with a `traceEvents` array.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use crate::json::Json;

/// Default event budget when tracing is enabled without an explicit cap
/// (~65k events; at roughly 100 bytes/event a few MiB resident).
pub const DEFAULT_TRACE_CAPACITY: usize = 1 << 16;

/// The process-wide time origin all trace timestamps are relative to.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Microseconds since the trace epoch.
pub(crate) fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Microseconds from the epoch to `t` (0 if `t` predates the epoch).
pub(crate) fn instant_us(t: Instant) -> u64 {
    t.checked_duration_since(epoch()).map(|d| d.as_micros() as u64).unwrap_or(0)
}

/// One timeline event, already timestamped.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    pub name: String,
    /// `'X'` (complete slice) or `'i'` (instant).
    pub ph: char,
    /// Microseconds since the trace epoch.
    pub ts_us: u64,
    /// Slice duration in microseconds (0 for instants).
    pub dur_us: u64,
    pub args: Vec<(String, Json)>,
}

/// A thread's private event buffer; `tid` is its registration index.
struct ThreadBuf {
    tid: u64,
    /// Human label for the lane (`thread_name` metadata in the export):
    /// the OS thread name at registration, overridable via
    /// [`TraceCollector::set_label`].
    label: Mutex<String>,
    events: Mutex<Vec<TraceEvent>>,
}

/// The per-registry timeline collector.
pub(crate) struct TraceCollector {
    enabled: AtomicBool,
    capacity: AtomicUsize,
    /// Events stored so far, bounded by `capacity`.
    stored: AtomicUsize,
    dropped: AtomicU64,
    threads: Mutex<Vec<Arc<ThreadBuf>>>,
}

impl TraceCollector {
    pub(crate) fn new() -> Self {
        Self {
            enabled: AtomicBool::new(false),
            capacity: AtomicUsize::new(DEFAULT_TRACE_CAPACITY),
            stored: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
            threads: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn set_enabled(&self, enabled: bool, capacity: usize) {
        if enabled {
            // Pin the time origin before the first event so timestamps
            // and span starts share a base.
            let _ = epoch();
        }
        self.capacity.store(capacity.max(1), Ordering::Relaxed);
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The one-load hot-path gate.
    #[inline]
    pub(crate) fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub(crate) fn stored(&self) -> usize {
        self.stored.load(Ordering::Relaxed)
    }

    /// Reserves one slot of the event budget; on exhaustion the event is
    /// dropped (counted, never blocking).
    fn try_reserve(&self) -> bool {
        let cap = self.capacity.load(Ordering::Relaxed);
        let mut cur = self.stored.load(Ordering::Relaxed);
        loop {
            if cur >= cap {
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.stored.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records an event into the calling thread's buffer. `registry_id`
    /// keys the thread-local buffer cache, so distinct registries on one
    /// thread stay isolated.
    pub(crate) fn record(self: &Arc<Self>, registry_id: u64, event: TraceEvent) {
        if !self.enabled() || !self.try_reserve() {
            return;
        }
        let buf = self.thread_buf(registry_id);
        buf.events.lock().push(event);
    }

    /// This thread's buffer for this collector, registering on first use.
    fn thread_buf(self: &Arc<Self>, registry_id: u64) -> Arc<ThreadBuf> {
        thread_local! {
            static BUFS: std::cell::RefCell<Vec<(u64, Arc<ThreadBuf>)>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        BUFS.with(|cell| {
            let mut cache = cell.borrow_mut();
            if let Some((_, buf)) = cache.iter().find(|(id, _)| *id == registry_id) {
                return buf.clone();
            }
            let mut threads = self.threads.lock();
            let tid = threads.len() as u64;
            let label = std::thread::current()
                .name()
                .map(str::to_string)
                .unwrap_or_else(|| format!("thread-{tid}"));
            let buf = Arc::new(ThreadBuf {
                tid,
                label: Mutex::new(label),
                events: Mutex::new(Vec::new()),
            });
            threads.push(buf.clone());
            drop(threads);
            // Bound the cache: stale registries (dropped test instances)
            // would otherwise accumulate forever on long-lived threads.
            if cache.len() >= 16 {
                cache.clear();
            }
            cache.push((registry_id, buf.clone()));
            buf
        })
    }

    /// Renames the calling thread's timeline lane (the `thread_name`
    /// metadata event in the export), registering the thread if needed.
    pub(crate) fn set_label(self: &Arc<Self>, registry_id: u64, label: &str) {
        let buf = self.thread_buf(registry_id);
        *buf.label.lock() = label.to_string();
    }

    /// Drops all stored events and zeroes the budget and drop counters;
    /// thread registrations (and tids) survive.
    pub(crate) fn reset(&self) {
        let threads = self.threads.lock();
        for t in threads.iter() {
            t.events.lock().clear();
        }
        self.stored.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// All events so far as `(tid, event)`, sorted by timestamp then tid
    /// for a deterministic export order.
    fn snapshot(&self) -> Vec<(u64, TraceEvent)> {
        let threads = self.threads.lock();
        let mut out: Vec<(u64, TraceEvent)> = Vec::with_capacity(self.stored());
        for t in threads.iter() {
            let events = t.events.lock();
            out.extend(events.iter().map(|e| (t.tid, e.clone())));
        }
        drop(threads);
        out.sort_by_key(|a| (a.1.ts_us, a.0));
        out
    }

    /// The Chrome `trace_event` document (object form). Leads with
    /// `process_name`/`thread_name` metadata events (`ph: "M"`) so the
    /// viewer labels each lane with its worker or job name instead of a
    /// bare thread id.
    pub(crate) fn to_chrome_json(&self) -> Json {
        let mut metadata: Vec<Json> = Vec::new();
        {
            let threads = self.threads.lock();
            if !threads.is_empty() {
                metadata.push(Json::Obj(vec![
                    ("name".to_string(), Json::Str("process_name".to_string())),
                    ("ph".to_string(), Json::Str("M".to_string())),
                    ("ts".to_string(), Json::Uint(0)),
                    ("pid".to_string(), Json::Uint(0)),
                    ("tid".to_string(), Json::Uint(0)),
                    (
                        "args".to_string(),
                        Json::Obj(vec![("name".to_string(), Json::Str("antmoc".to_string()))]),
                    ),
                ]));
            }
            for t in threads.iter() {
                metadata.push(Json::Obj(vec![
                    ("name".to_string(), Json::Str("thread_name".to_string())),
                    ("ph".to_string(), Json::Str("M".to_string())),
                    ("ts".to_string(), Json::Uint(0)),
                    ("pid".to_string(), Json::Uint(0)),
                    ("tid".to_string(), Json::Uint(t.tid)),
                    (
                        "args".to_string(),
                        Json::Obj(vec![("name".to_string(), Json::Str(t.label.lock().clone()))]),
                    ),
                ]));
            }
        }
        let recorded = self.snapshot().into_iter().map(|(tid, e)| {
            let mut obj = vec![
                ("name".to_string(), Json::Str(e.name)),
                ("ph".to_string(), Json::Str(e.ph.to_string())),
                ("ts".to_string(), Json::Uint(e.ts_us)),
            ];
            if e.ph == 'X' {
                obj.push(("dur".to_string(), Json::Uint(e.dur_us)));
            }
            obj.push(("pid".to_string(), Json::Uint(0)));
            obj.push(("tid".to_string(), Json::Uint(tid)));
            if e.ph == 'i' {
                // Instant scope: thread-local tick mark.
                obj.push(("s".to_string(), Json::Str("t".to_string())));
            }
            if !e.args.is_empty() {
                obj.push(("args".to_string(), Json::Obj(e.args)));
            }
            Json::Obj(obj)
        });
        let events: Vec<Json> = metadata.into_iter().chain(recorded).collect();
        Json::Obj(vec![
            ("traceEvents".to_string(), Json::Arr(events)),
            ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
            (
                "otherData".to_string(),
                Json::Obj(vec![
                    ("events".to_string(), Json::Uint(self.stored() as u64)),
                    ("dropped".to_string(), Json::Uint(self.dropped())),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instant(name: &str) -> TraceEvent {
        TraceEvent { name: name.to_string(), ph: 'i', ts_us: now_us(), dur_us: 0, args: Vec::new() }
    }

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Arc::new(TraceCollector::new());
        c.record(0, instant("e"));
        assert_eq!(c.stored(), 0);
        assert_eq!(c.dropped(), 0);
    }

    /// The satellite property: overflowing the ring budget increments
    /// `trace.dropped` by exactly the overflow, deterministically.
    #[test]
    fn overflow_drops_deterministically() {
        let c = Arc::new(TraceCollector::new());
        c.set_enabled(true, 8);
        for i in 0..11 {
            c.record(1, instant(if i % 2 == 0 { "even" } else { "odd" }));
        }
        assert_eq!(c.stored(), 8, "budget must cap stored events");
        assert_eq!(c.dropped(), 3, "every event past the cap counts as dropped");
        // The survivors are the oldest 8, in order.
        let events = c.snapshot();
        assert_eq!(events.len(), 8);
        c.reset();
        assert_eq!(c.stored(), 0);
        assert_eq!(c.dropped(), 0);
        // Post-reset the full budget is available again.
        for _ in 0..8 {
            c.record(1, instant("again"));
        }
        assert_eq!(c.stored(), 8);
        assert_eq!(c.dropped(), 0);
    }

    #[test]
    fn budget_is_global_across_threads() {
        let c = Arc::new(TraceCollector::new());
        c.set_enabled(true, 100);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..50 {
                        c.record(2, instant("t"));
                    }
                });
            }
        });
        assert_eq!(c.stored(), 100);
        assert_eq!(c.dropped(), 100);
    }

    #[test]
    fn chrome_export_is_well_formed() {
        let c = Arc::new(TraceCollector::new());
        c.set_enabled(true, 100);
        c.record(
            3,
            TraceEvent {
                name: "sweep".to_string(),
                ph: 'X',
                ts_us: 10,
                dur_us: 5,
                args: vec![("tracks".to_string(), Json::Uint(7))],
            },
        );
        c.record(3, instant("checkpoint"));
        let doc = c.to_chrome_json();
        let all = match doc.get("traceEvents") {
            Some(Json::Arr(events)) => events,
            other => panic!("traceEvents missing: {other:?}"),
        };
        // Metadata lanes lead: one process_name plus one thread_name per
        // registered thread (a single thread recorded here).
        let (meta, events): (Vec<&Json>, Vec<&Json>) =
            all.iter().partition(|e| e.get("ph").and_then(Json::as_str) == Some("M"));
        let meta_names: Vec<_> =
            meta.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
        assert_eq!(meta_names, ["process_name", "thread_name"]);
        let lane = meta[1].get("args").and_then(|a| a.get("name")).and_then(Json::as_str);
        assert!(lane.is_some_and(|l| !l.is_empty()), "thread lane must be labeled: {lane:?}");
        assert_eq!(events.len(), 2);
        let slice = &events[0];
        assert_eq!(slice.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(slice.get("dur").and_then(Json::as_u64), Some(5));
        assert_eq!(slice.get("pid").and_then(Json::as_u64), Some(0));
        assert!(slice.get("tid").and_then(Json::as_u64).is_some());
        assert_eq!(slice.get("args").and_then(|a| a.get("tracks")).and_then(Json::as_u64), Some(7));
        // Round-trips through our own parser (the validator report-diff uses).
        let text = doc.to_pretty_string();
        assert!(crate::json::parse(&text).is_ok());
    }
}
