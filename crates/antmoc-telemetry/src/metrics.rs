//! Service-level metrics registry with Prometheus-style text exposition.
//!
//! Per-job telemetry sinks (see [`Telemetry::install`]) answer "what did
//! *this* run do"; a long-lived service also needs the aggregate view —
//! total jobs, cache traffic, queue-wait distribution — that operators
//! scrape. [`MetricsRegistry`] is that aggregate:
//!
//! * **counters** fold in monotonically (saturating adds; a registry
//!   total is the exact sum over every merged sink);
//! * **gauges** keep the latest level plus an all-time high-water mark;
//! * **histograms** merge **bucket-exact** (see [`Histogram::merge`]):
//!   the registry's percentiles equal those of recording every sample
//!   into one histogram serially;
//! * **rolling rates** — each counter increment is timestamped into a
//!   bounded window so [`MetricsRegistry::rate_per_sec`] can answer
//!   "jobs per second over the last minute" without a scrape history.
//!
//! [`MetricsRegistry::render_text`] renders the Prometheus text
//! exposition format: `# HELP`/`# TYPE` comment lines, counters with the
//! conventional `_total` suffix, and histograms as cumulative `_bucket`
//! series with `le` labels plus `_sum`/`_count`. The format is plain
//! enough to hand to any scraper; [`validate_exposition`] is the parser
//! CI uses to keep it that way.

use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::hist::Histogram;
use crate::report::GaugeStats;
use crate::Telemetry;

/// Default width of the rolling-rate window.
pub const DEFAULT_RATE_WINDOW: Duration = Duration::from_secs(60);

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, GaugeStats>,
    histograms: BTreeMap<String, Histogram>,
    /// Timestamped counter increments inside the rolling window, oldest
    /// first; pruned on every push and every rate query.
    events: VecDeque<(Instant, String, u64)>,
}

impl Inner {
    fn prune(&mut self, window: Duration, now: Instant) {
        while let Some((t, _, _)) = self.events.front() {
            if now.duration_since(*t) <= window {
                break;
            }
            self.events.pop_front();
        }
    }
}

/// A thread-safe aggregate of completed telemetry sinks plus directly
/// recorded service metrics.
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
    window: Duration,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::with_rate_window(DEFAULT_RATE_WINDOW)
    }

    /// A registry whose rolling rates cover `window` (tests use short
    /// windows; production scrapers usually want the default minute).
    pub fn with_rate_window(window: Duration) -> Self {
        Self { inner: Mutex::new(Inner::default()), window }
    }

    /// Adds to a monotonic counter (saturating) and timestamps the
    /// increment for the rolling rate.
    pub fn counter_add(&self, name: &str, delta: u64) {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        let slot = inner.counters.entry(name.to_string()).or_insert(0);
        *slot = slot.saturating_add(delta);
        if delta > 0 {
            inner.events.push_back((now, name.to_string(), delta));
            inner.prune(self.window, now);
        }
    }

    /// Sets a gauge's level, folding the all-time high-water mark.
    pub fn gauge_set(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock();
        let slot = inner.gauges.entry(name.to_string()).or_default();
        slot.last = value;
        slot.high_water = slot.high_water.max(value);
    }

    /// Records one sample into a registry histogram.
    pub fn histogram_record(&self, name: &str, value: u64) {
        self.inner.lock().histograms.entry(name.to_string()).or_default().record(value);
    }

    /// Folds a full histogram in, bucket-exact.
    pub fn histogram_merge(&self, name: &str, shard: &Histogram) {
        if shard.is_empty() {
            return;
        }
        self.inner.lock().histograms.entry(name.to_string()).or_default().merge(shard);
    }

    /// Folds a gauge snapshot in: the incoming `last` becomes current,
    /// high-waters take the max (the registry never forgets a peak).
    pub fn gauge_merge(&self, name: &str, stats: GaugeStats) {
        let mut inner = self.inner.lock();
        let slot = inner.gauges.entry(name.to_string()).or_default();
        slot.last = stats.last;
        slot.high_water = slot.high_water.max(stats.high_water);
    }

    /// Current counter total (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Current gauge snapshot.
    pub fn gauge(&self, name: &str) -> Option<GaugeStats> {
        self.inner.lock().gauges.get(name).copied()
    }

    /// Clone of a registry histogram (bucket-exact), if present.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.inner.lock().histograms.get(name).cloned()
    }

    /// A percentile of a registry histogram (0 when absent/empty).
    pub fn histogram_percentile(&self, name: &str, p: f64) -> u64 {
        self.inner.lock().histograms.get(name).map_or(0, |h| h.percentile(p))
    }

    /// Increments of `name` per second over the rolling window. Counts
    /// only increments still inside the window; the denominator is the
    /// full window width, so a burst decays as it ages out.
    pub fn rate_per_sec(&self, name: &str) -> f64 {
        let now = Instant::now();
        let mut inner = self.inner.lock();
        inner.prune(self.window, now);
        let total: u64 =
            inner.events.iter().filter(|(_, n, _)| n == name).map(|(_, _, d)| *d).sum();
        total as f64 / self.window.as_secs_f64().max(1e-9)
    }

    /// Renders the Prometheus text exposition of everything in the
    /// registry. Metric names are sanitized (`.` and other non-alphanumerics
    /// become `_`); counters get the conventional `_total` suffix and a
    /// companion `_per_second` gauge (rolling window); gauges emit the
    /// level plus a `_peak` high-water series; histograms emit cumulative
    /// `_bucket{le=...}` series with `_sum` and `_count`.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let now = Instant::now();
        let mut inner = self.inner.lock();
        inner.prune(self.window, now);
        let window_s = self.window.as_secs_f64().max(1e-9);
        let mut out = String::new();

        for (name, value) in &inner.counters {
            let prom = counter_exposition_name(name);
            let _ = writeln!(out, "# HELP {prom} Monotonic total of counter '{name}'.");
            let _ = writeln!(out, "# TYPE {prom} counter");
            let _ = writeln!(out, "{prom} {value}");
            let recent: u64 =
                inner.events.iter().filter(|(_, n, _)| n == name).map(|(_, _, d)| *d).sum();
            let rate_name = format!("{}_per_second", sanitize_name(name));
            let _ = writeln!(
                out,
                "# HELP {rate_name} Increments of '{name}' per second over the last {:.0}s.",
                window_s
            );
            let _ = writeln!(out, "# TYPE {rate_name} gauge");
            let _ = writeln!(out, "{rate_name} {}", format_f64(recent as f64 / window_s));
        }

        for (name, stats) in &inner.gauges {
            let prom = sanitize_name(name);
            let _ = writeln!(out, "# HELP {prom} Last level of gauge '{name}'.");
            let _ = writeln!(out, "# TYPE {prom} gauge");
            let _ = writeln!(out, "{prom} {}", format_f64(stats.last));
            let _ = writeln!(out, "# HELP {prom}_peak High-water mark of gauge '{name}'.");
            let _ = writeln!(out, "# TYPE {prom}_peak gauge");
            let _ = writeln!(out, "{prom}_peak {}", format_f64(stats.high_water));
        }

        for (name, hist) in &inner.histograms {
            let prom = sanitize_name(name);
            let _ = writeln!(out, "# HELP {prom} Distribution of '{name}'.");
            let _ = writeln!(out, "# TYPE {prom} histogram");
            let mut cumulative = 0u64;
            for (edge, count) in hist.buckets() {
                cumulative += count;
                let _ = writeln!(out, "{prom}_bucket{{le=\"{edge}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{prom}_bucket{{le=\"+Inf\"}} {}", hist.count());
            let _ = writeln!(out, "{prom}_sum {}", hist.sum());
            let _ = writeln!(out, "{prom}_count {}", hist.count());
        }

        out
    }
}

impl Telemetry {
    /// Folds this sink's counters, gauges, and histograms into a
    /// service-level registry. Counter adds are saturating, gauge
    /// high-waters take the max, and histograms merge **bucket-exact** —
    /// merging N job sinks leaves the registry equal to recording every
    /// sample serially. Spans, iterations, meta, and trace events stay in
    /// the sink: they are per-run shapes, not service aggregates.
    pub fn merge_into_registry(&self, registry: &MetricsRegistry) {
        for (name, value) in self.registry.counters.lock().iter() {
            registry.counter_add(name, *value);
        }
        for (name, stats) in self.registry.gauges.lock().iter() {
            registry.gauge_merge(name, *stats);
        }
        for (name, hist) in self.registry.histograms.lock().iter() {
            registry.histogram_merge(name, hist);
        }
    }
}

/// Maps a dotted metric name onto the Prometheus charset: alphanumerics
/// and underscores survive, everything else becomes `_`, and a leading
/// digit gets an underscore prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// The exposition name of a counter: sanitized, with the conventional
/// `_total` suffix (not doubled if already present).
pub fn counter_exposition_name(name: &str) -> String {
    let base = sanitize_name(name);
    if base.ends_with("_total") {
        base
    } else {
        format!("{base}_total")
    }
}

/// Renders an `f64` the exposition way: integral values without a
/// fractional part, everything else via shortest-roundtrip formatting.
fn format_f64(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Parses a text exposition, enforcing the subset this module emits:
/// every non-comment line is `name[{label="value",...}] number`, every
/// series is preceded by a `# TYPE` for its family, and histogram
/// `_bucket` series carry an `le` label. Returns the number of sample
/// lines. CI scrapes `render_text` through this to catch format drift.
pub fn validate_exposition(text: &str) -> Result<usize, String> {
    let mut samples = 0usize;
    let mut typed: std::collections::BTreeSet<String> = Default::default();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or_else(|| format!("line {lineno}: bare TYPE"))?;
            match parts.next() {
                Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                other => return Err(format!("line {lineno}: bad TYPE {other:?}")),
            }
            typed.insert(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {lineno}: no value separator: {line:?}"))?;
        value.parse::<f64>().map_err(|e| format!("line {lineno}: bad value {value:?}: {e}"))?;
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| format!("line {lineno}: unterminated labels"))?;
                (n, Some(body))
            }
            None => (series, None),
        };
        if name.is_empty()
            || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
            || name.starts_with(|c: char| c.is_ascii_digit())
        {
            return Err(format!("line {lineno}: invalid metric name {name:?}"));
        }
        if let Some(body) = labels {
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair
                    .split_once('=')
                    .ok_or_else(|| format!("line {lineno}: bad label {pair:?}"))?;
                if k.is_empty() || !v.starts_with('"') || !v.ends_with('"') || v.len() < 2 {
                    return Err(format!("line {lineno}: bad label {pair:?}"));
                }
            }
        }
        // A `_bucket`/`_sum`/`_count` series belongs to its histogram
        // family; everything else must carry its own TYPE line.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|s| name.strip_suffix(s))
            .filter(|f| typed.contains(*f))
            .unwrap_or(name);
        if !typed.contains(family) {
            return Err(format!("line {lineno}: series {name:?} has no TYPE"));
        }
        if name.ends_with("_bucket") && !labels.unwrap_or("").contains("le=") {
            return Err(format!("line {lineno}: bucket series without le label"));
        }
        samples += 1;
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_fold_monotonically_and_saturate() {
        let r = MetricsRegistry::new();
        r.counter_add("serve.jobs", 3);
        r.counter_add("serve.jobs", 4);
        assert_eq!(r.counter("serve.jobs"), 7);
        r.counter_add("serve.jobs", u64::MAX);
        assert_eq!(r.counter("serve.jobs"), u64::MAX);
    }

    #[test]
    fn gauges_keep_high_water_across_merges() {
        let r = MetricsRegistry::new();
        r.gauge_set("pool.bytes", 100.0);
        r.gauge_merge("pool.bytes", GaugeStats { last: 10.0, high_water: 400.0 });
        r.gauge_merge("pool.bytes", GaugeStats { last: 50.0, high_water: 30.0 });
        let g = r.gauge("pool.bytes").unwrap();
        assert_eq!(g.last, 50.0);
        assert_eq!(g.high_water, 400.0);
    }

    #[test]
    fn sink_merges_are_bucket_exact() {
        // Two sinks splitting one sample stream must merge into exactly
        // the histogram of serial recording — buckets, not quantile
        // approximations.
        let (a, b) = (Telemetry::new(), Telemetry::new());
        let mut serial = Histogram::new();
        for v in 0..5000u64 {
            let sink = if v % 3 == 0 { &a } else { &b };
            sink.histogram_record("lat_ns", v * 17);
            serial.record(v * 17);
            sink.counter_add("items", 1);
        }
        let r = MetricsRegistry::new();
        a.merge_into_registry(&r);
        b.merge_into_registry(&r);
        assert_eq!(r.histogram("lat_ns").unwrap(), serial);
        assert_eq!(r.counter("items"), 5000);
    }

    #[test]
    fn rolling_rate_counts_only_window_events() {
        let r = MetricsRegistry::with_rate_window(Duration::from_millis(40));
        r.counter_add("serve.jobs", 10);
        assert!(r.rate_per_sec("serve.jobs") > 0.0);
        std::thread::sleep(Duration::from_millis(80));
        assert_eq!(r.rate_per_sec("serve.jobs"), 0.0);
        // The monotonic total is untouched by the window.
        assert_eq!(r.counter("serve.jobs"), 10);
    }

    #[test]
    fn exposition_names_follow_conventions() {
        assert_eq!(sanitize_name("serve.queue_wait_ns"), "serve_queue_wait_ns");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(counter_exposition_name("serve.jobs"), "serve_jobs_total");
        assert_eq!(counter_exposition_name("already_total"), "already_total");
    }

    #[test]
    fn render_text_passes_the_validator_and_names_series() {
        let r = MetricsRegistry::new();
        r.counter_add("serve.jobs", 12);
        r.gauge_set("admission.inflight_bytes", 1.5e6);
        for v in [100u64, 2000, 2000, 70000] {
            r.histogram_record("serve.queue_wait_ns", v);
        }
        let text = r.render_text();
        let samples = validate_exposition(&text).expect("exposition parses");
        assert!(samples >= 8, "expected counter+rate+gauge+hist series, got {samples}:\n{text}");
        assert!(text.contains("serve_jobs_total 12"));
        assert!(text.contains("serve_queue_wait_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("serve_queue_wait_ns_count 4"));
        assert!(text.contains("serve_queue_wait_ns_sum 74100"));
        assert!(text.contains("# TYPE serve_queue_wait_ns histogram"));
    }

    #[test]
    fn cumulative_buckets_are_monotone_and_end_at_count() {
        let r = MetricsRegistry::new();
        for v in (0..1000u64).map(|v| v * v) {
            r.histogram_record("h", v);
        }
        let text = r.render_text();
        let mut prev = 0u64;
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.starts_with("h_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= prev, "cumulative counts must be monotone: {line}");
            prev = v;
            last = v;
        }
        assert_eq!(last, 1000, "the +Inf bucket must equal the count");
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_exposition("no_type_line 1").is_err());
        assert!(validate_exposition("# TYPE x counter\nx{le=\"3} 1").is_err());
        assert!(validate_exposition("# TYPE x counter\nx not_a_number").is_err());
        assert!(validate_exposition("# TYPE h histogram\nh_bucket 3").is_err());
        assert!(validate_exposition("# TYPE 9bad counter\n9bad 1").is_err());
        assert_eq!(validate_exposition("# just a comment\n").unwrap(), 0);
    }
}
