//! A minimal JSON value, writer, and parser.
//!
//! The build environment has no crates.io access, so `serde` is not
//! available; this module carries the whole serialization story for
//! telemetry artifacts. It supports exactly the JSON the `RunReport`
//! schema needs: objects with ordered keys, arrays, strings, bools,
//! null, and numbers kept as `i64`/`u64`/`f64` so counters survive a
//! round trip bit-exactly.

use std::fmt::Write as _;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Signed integer (also covers unsigned values up to `i64::MAX`;
    /// larger counters fall back to `Uint`).
    Int(i64),
    /// Unsigned integers above `i64::MAX`.
    Uint(u64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with insertion-ordered keys (deterministic output).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object node from key/value pairs.
    pub fn obj(pairs: Vec<(String, Json)>) -> Self {
        Json::Obj(pairs)
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view of `Int`/`Uint`/`Num` nodes.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Uint(u) => Some(*u as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Unsigned view of integer nodes.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::Uint(u) => Some(*u),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Uint(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Num(n) => write_f64(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, n: f64) {
    if n.is_finite() {
        // Always keep a decimal point or exponent so the value parses
        // back as a float, not an integer.
        let s = format!("{n}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional stand-in.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub offset: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document (rejecting trailing garbage).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not paired up; telemetry
                            // strings never contain them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::Uint(u));
            }
        }
        text.parse::<f64>().map(Json::Num).map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("sweep \"hot\" path\n".into())),
            ("count".into(), Json::Uint(u64::MAX)),
            ("neg".into(), Json::Int(-42)),
            ("pi".into(), Json::Num(3.5)),
            ("whole".into(), Json::Num(2.0)),
            ("flags".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        let text = doc.to_pretty_string();
        let back = parse(&text).unwrap();
        assert_eq!(doc, back);
    }

    #[test]
    fn parses_plain_json() {
        let v = parse(r#"{"a": [1, 2.5, "x", {"b": false}], "c": null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![
                Json::Int(1),
                Json::Num(2.5),
                Json::Str("x".into()),
                Json::Obj(vec![("b".into(), Json::Bool(false))]),
            ])
        );
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1, ]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse("9007199254740993").unwrap(); // 2^53 + 1
        assert_eq!(v.as_u64(), Some(9007199254740993));
    }
}
