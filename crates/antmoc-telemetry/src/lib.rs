//! Run telemetry: scoped spans, counters, and gauges feeding a
//! machine-readable [`RunReport`].
//!
//! The paper's entire results section (§5, Figs. 8–12) is read off run
//! logs — per-phase wall time, sweep throughput, memory footprint, and
//! communication traffic. This crate is the measurement substrate those
//! numbers flow through:
//!
//! * [`Telemetry::span`] — RAII wall timers; nested spans produce
//!   `/`-joined paths (`eigen/transport_sweep`) and aggregate count,
//!   total, min, and max per path, thread-safely.
//! * [`Telemetry::counter_add`] — saturating event totals (segments
//!   swept, tracks traced, comm bytes, atomic-add contention).
//! * [`Telemetry::gauge_set`] — level samples retaining a high-water
//!   mark (resident-segment bytes, flux-bank memory, pool usage).
//! * [`Telemetry::report`] — snapshots everything into a [`RunReport`]
//!   that serializes to pretty JSON (see `report.rs` for the schema).
//!
//! Handles are cheap clones of an `Arc`; the process-wide instance from
//! [`Telemetry::global`] is what the solver/track/cluster/gpusim hot
//! paths record into, so binaries can `reset()` at run start and
//! `report()` at the end without threading a handle through every
//! signature.

pub mod json;
mod report;

pub use json::Json;
pub use report::{GaugeStats, RunReport, SpanStats};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

thread_local! {
    /// The active span-name stack on this thread; drives path nesting.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

#[derive(Default)]
struct Registry {
    spans: Mutex<BTreeMap<String, SpanStats>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, GaugeStats>>,
    meta: Mutex<BTreeMap<String, Json>>,
    sections: Mutex<BTreeMap<String, Json>>,
}

/// A cloneable handle to a telemetry registry.
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Arc<Registry>,
}

impl Telemetry {
    /// A fresh, private registry (used by tests and tools that must not
    /// share state with the global instance).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry the library hot paths record into.
    pub fn global() -> &'static Telemetry {
        static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
        GLOBAL.get_or_init(Telemetry::new)
    }

    /// Opens a RAII span. While the guard lives, spans opened on the
    /// same thread nest under it; dropping the guard records the elapsed
    /// wall time against the `/`-joined path.
    ///
    /// Names are `&'static str` on purpose: hot paths must not allocate
    /// to be observable.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        let path = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        SpanGuard { telemetry: self, path: Some(path), start: Instant::now() }
    }

    /// Adds to a counter, saturating at `u64::MAX` (a tripped counter
    /// must pin at the ceiling, not wrap to a tiny value and fake a
    /// quiet run).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut counters = self.registry.counters.lock();
        let slot = counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Sets a gauge's current level and folds it into the high-water
    /// mark.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let mut gauges = self.registry.gauges.lock();
        let slot = gauges.entry(name).or_default();
        slot.last = value;
        slot.high_water = slot.high_water.max(value);
    }

    /// Attaches run identification carried into the report.
    pub fn set_meta(&self, key: &str, value: &str) {
        self.registry.meta.lock().insert(key.to_string(), Json::Str(value.to_string()));
    }

    /// Attaches a numeric metadata entry.
    pub fn set_meta_num(&self, key: &str, value: f64) {
        self.registry.meta.lock().insert(key.to_string(), Json::Num(value));
    }

    /// Attaches a free-form JSON section (e.g. a neutron-balance
    /// report) carried into the report.
    pub fn set_section(&self, name: &str, value: Json) {
        self.registry.sections.lock().insert(name.to_string(), value);
    }

    /// Snapshots all aggregates into a serializable report.
    pub fn report(&self) -> RunReport {
        RunReport {
            meta: self.registry.meta.lock().clone(),
            spans: self.registry.spans.lock().clone(),
            counters: self
                .registry
                .counters
                .lock()
                .iter()
                .map(|(&k, &v)| (k.to_string(), v))
                .collect(),
            gauges: self.registry.gauges.lock().iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            sections: self.registry.sections.lock().clone(),
        }
    }

    /// Clears every aggregate — call at the start of a measured run when
    /// using the global instance.
    pub fn reset(&self) {
        self.registry.spans.lock().clear();
        self.registry.counters.lock().clear();
        self.registry.gauges.lock().clear();
        self.registry.meta.lock().clear();
        self.registry.sections.lock().clear();
    }

    fn record_span(&self, path: &str, seconds: f64) {
        self.registry.spans.lock().entry(path.to_string()).or_default().record(seconds);
    }
}

/// RAII guard created by [`Telemetry::span`]; records on drop.
pub struct SpanGuard<'a> {
    telemetry: &'a Telemetry,
    /// `Some` until the guard fires; `take`n in drop.
    path: Option<String>,
    start: Instant,
}

impl SpanGuard<'_> {
    /// The `/`-joined path this guard will record under.
    pub fn path(&self) -> &str {
        self.path.as_deref().unwrap_or("")
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else { return };
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        self.telemetry.record_span(&path, self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_slash_paths() {
        let t = Telemetry::new();
        {
            let _outer = t.span("eigen");
            {
                let _inner = t.span("transport_sweep");
            }
            {
                let _inner = t.span("transport_sweep");
            }
        }
        let r = t.report();
        assert_eq!(r.spans["eigen"].count, 1);
        assert_eq!(r.spans["eigen/transport_sweep"].count, 2);
        assert!(r.spans["eigen"].total_s >= r.spans["eigen/transport_sweep"].total_s);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let t = Telemetry::new();
        {
            let _a = t.span("a");
        }
        {
            let _b = t.span("b");
        }
        let r = t.report();
        assert!(r.spans.contains_key("a"));
        assert!(r.spans.contains_key("b"));
        assert!(!r.spans.contains_key("a/b"));
    }

    #[test]
    fn spans_aggregate_across_rayon_worker_threads() {
        use rayon::prelude::*;
        let t = Telemetry::new();
        let _outer = t.span("launch");
        // Spawned workers have fresh span stacks, so their spans are
        // roots ("kernel"); the calling thread also executes tasks and
        // its stack still holds "launch", so its spans nest
        // ("launch/kernel"). How the 64 items split between the two is
        // scheduling-dependent — what must hold is that every completion
        // lands in the shared aggregate, none lost.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                let _s = t.span("kernel");
            });
        });
        drop(_outer);
        let r = t.report();
        let count = |path: &str| r.spans.get(path).map_or(0, |s| s.count);
        assert_eq!(count("kernel") + count("launch/kernel"), 64);
        assert_eq!(r.spans["launch"].count, 1);
        for s in ["kernel", "launch/kernel"] {
            if let Some(s) = r.spans.get(s) {
                assert!(s.min_s <= s.max_s);
            }
        }
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let t = Telemetry::new();
        t.counter_add("big", u64::MAX - 1);
        t.counter_add("big", 10);
        t.counter_add("big", 10);
        assert_eq!(t.report().counter("big"), u64::MAX);
    }

    #[test]
    fn counters_accumulate_from_many_threads() {
        let t = Telemetry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.counter_add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(t.report().counter("hits"), 8000);
    }

    #[test]
    fn gauges_keep_high_water() {
        let t = Telemetry::new();
        t.gauge_set("pool", 100.0);
        t.gauge_set("pool", 400.0);
        t.gauge_set("pool", 50.0);
        let g = t.report().gauges["pool"];
        assert_eq!(g.last, 50.0);
        assert_eq!(g.high_water, 400.0);
    }

    #[test]
    fn reset_clears_everything() {
        let t = Telemetry::new();
        t.counter_add("c", 1);
        t.gauge_set("g", 1.0);
        {
            let _s = t.span("s");
        }
        t.set_meta("case", "x");
        t.reset();
        let r = t.report();
        assert!(r.counters.is_empty());
        assert!(r.gauges.is_empty());
        assert!(r.spans.is_empty());
        assert!(r.meta.is_empty());
    }

    #[test]
    fn full_report_round_trips_through_json() {
        let t = Telemetry::new();
        t.set_meta("case", "unit");
        {
            let _s = t.span("phase");
            t.counter_add("segments", 12345);
            t.gauge_set("bytes", 9.5e6);
        }
        let r = t.report();
        let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back.counter("segments"), 12345);
        assert_eq!(back.spans["phase"].count, 1);
        assert_eq!(back.gauges["bytes"].high_water, 9.5e6);
        assert_eq!(back.meta["case"], Json::Str("unit".into()));
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_counter_sets_round_trip(
            values in proptest::collection::vec(0u64..1_000_000_000, 1..20)
        ) {
            let t = Telemetry::new();
            // Distinct static names are limited; fold values into one
            // counter and compare the saturating sum.
            let mut expected: u64 = 0;
            for v in &values {
                t.counter_add("acc", *v);
                expected = expected.saturating_add(*v);
            }
            let r = t.report();
            let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
            proptest::prop_assert_eq!(back.counter("acc"), expected);
        }
    }
}
