//! Run telemetry: scoped spans, counters, and gauges feeding a
//! machine-readable [`RunReport`].
//!
//! The paper's entire results section (§5, Figs. 8–12) is read off run
//! logs — per-phase wall time, sweep throughput, memory footprint, and
//! communication traffic. This crate is the measurement substrate those
//! numbers flow through:
//!
//! * [`Telemetry::span`] — RAII wall timers; nested spans produce
//!   `/`-joined paths (`eigen/transport_sweep`) and aggregate count,
//!   total, min, and max per path, thread-safely.
//! * [`Telemetry::counter_add`] — saturating event totals (segments
//!   swept, tracks traced, comm bytes, atomic-add contention).
//! * [`Telemetry::gauge_set`] — level samples retaining a high-water
//!   mark (resident-segment bytes, flux-bank memory, pool usage).
//! * [`Telemetry::report`] — snapshots everything into a [`RunReport`]
//!   that serializes to pretty JSON (see `report.rs` for the schema).
//!
//! Handles are cheap clones of an `Arc`. Library hot paths record into
//! [`Telemetry::current`]: the innermost instance installed on the
//! calling thread via [`Telemetry::install`], falling back to the
//! process-wide [`Telemetry::global`] when nothing is installed. One-shot
//! binaries keep the old contract (`reset()` at run start, `report()` at
//! the end, no handle threading); multi-tenant drivers like
//! `antmoc-serve` install a private sink per job so concurrent runs never
//! entangle their reports. Installed contexts follow work onto the rayon
//! shim's spawned workers via its region-context hooks, so parallel
//! regions record into the job that drove them.
//!
//! Completed sinks fold into a service-level [`metrics::MetricsRegistry`]
//! (monotonic counters, gauge high-waters, exact histogram merges) with a
//! Prometheus-style text exposition for scraping.

pub mod hist;
pub mod json;
pub mod metrics;
mod report;
pub mod trace;

pub use hist::{Histogram, HistogramSummary};
pub use json::Json;
pub use metrics::MetricsRegistry;
pub use report::{GaugeStats, RunReport, SpanStats};
pub use trace::{TraceEvent, DEFAULT_TRACE_CAPACITY};

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use trace::TraceCollector;

/// One registry's span-name stack on one thread.
struct ThreadSpanStack {
    registry: u64,
    /// The registry's reset generation this stack belongs to; a stale
    /// generation means `reset()` ran and the stack is garbage.
    generation: u64,
    stack: Vec<&'static str>,
}

thread_local! {
    /// Active span-name stacks on this thread, one per registry; drives
    /// path nesting. Keyed by registry id so private test instances and
    /// the global instance never interleave paths.
    static SPAN_STACKS: RefCell<Vec<ThreadSpanStack>> = const { RefCell::new(Vec::new()) };

    /// Stack of telemetry instances installed on this thread; the top is
    /// what [`Telemetry::current`] resolves to. A stack (not a slot) so
    /// nested installs — a job sink installed inside a test that already
    /// installed one — restore correctly.
    static CURRENT: RefCell<Vec<Telemetry>> = const { RefCell::new(Vec::new()) };
}

/// Registers the rayon-shim region-context hooks that carry the
/// installed telemetry context onto spawned worker threads. Runs once,
/// lazily, on the first `install()`: processes that never scope their
/// telemetry never pay for (or interfere with) propagation.
fn register_worker_propagation() {
    use std::any::Any;
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        rayon::set_region_context_hooks(
            || Telemetry::try_current().map(|t| Box::new(t) as Box<dyn Any + Send + Sync>),
            |ctx| {
                let t = ctx.downcast_ref::<Telemetry>().expect("telemetry region context");
                Box::new(t.install())
            },
        );
    });
}

/// RAII guard from [`Telemetry::install`]; uninstalls the scoped context
/// (restoring the previous one) on drop. Deliberately `!Send`: the
/// context is a property of the installing thread, and dropping the
/// guard elsewhere would unbalance that thread's stack.
pub struct ScopeGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Runs `f` on this thread's stack for `registry`, first discarding the
/// stack if it belongs to an older reset generation (the satellite fix:
/// spans leaked by a panic or `mem::forget` must not corrupt the paths of
/// the next measured run).
fn with_span_stack<R>(
    registry: u64,
    generation: u64,
    f: impl FnOnce(&mut Vec<&'static str>) -> R,
) -> R {
    SPAN_STACKS.with(|cell| {
        let mut stacks = cell.borrow_mut();
        // Drop finished stacks of other registries so long-lived threads
        // touching many short-lived instances stay bounded.
        stacks.retain(|s| s.registry == registry || !s.stack.is_empty());
        let idx = match stacks.iter().position(|s| s.registry == registry) {
            Some(i) => i,
            None => {
                stacks.push(ThreadSpanStack { registry, generation, stack: Vec::new() });
                stacks.len() - 1
            }
        };
        let entry = &mut stacks[idx];
        if entry.generation != generation {
            entry.stack.clear();
            entry.generation = generation;
        }
        f(&mut entry.stack)
    })
}

struct Registry {
    /// Process-unique id; keys the per-thread span stacks and trace
    /// buffers so distinct instances stay isolated.
    id: u64,
    /// Bumped by `reset()`; invalidates every thread's span stack.
    span_generation: AtomicU64,
    spans: Mutex<BTreeMap<String, SpanStats>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    gauges: Mutex<BTreeMap<&'static str, GaugeStats>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    iterations: Mutex<Vec<Json>>,
    meta: Mutex<BTreeMap<String, Json>>,
    sections: Mutex<BTreeMap<String, Json>>,
    trace: Arc<TraceCollector>,
}

impl Default for Registry {
    fn default() -> Self {
        static NEXT_ID: AtomicU64 = AtomicU64::new(0);
        Self {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            span_generation: AtomicU64::new(0),
            spans: Mutex::default(),
            counters: Mutex::default(),
            gauges: Mutex::default(),
            histograms: Mutex::default(),
            iterations: Mutex::default(),
            meta: Mutex::default(),
            sections: Mutex::default(),
            trace: Arc::new(TraceCollector::new()),
        }
    }
}

/// A cloneable handle to a telemetry registry.
#[derive(Clone, Default)]
pub struct Telemetry {
    registry: Arc<Registry>,
}

impl Telemetry {
    /// A fresh, private registry (used by tests and tools that must not
    /// share state with the global instance).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry — the fallback sink when no scoped
    /// instance is installed, and the home of service-level metrics that
    /// must stay out of per-job reports.
    pub fn global() -> &'static Telemetry {
        static GLOBAL: OnceLock<Telemetry> = OnceLock::new();
        GLOBAL.get_or_init(Telemetry::new)
    }

    /// Installs this instance as the calling thread's telemetry context
    /// for the lifetime of the returned guard: [`Telemetry::current`]
    /// resolves to it, on this thread and on every rayon-shim worker a
    /// parallel region driven from this thread spawns. Installs nest;
    /// dropping the guard restores the previous context.
    pub fn install(&self) -> ScopeGuard {
        register_worker_propagation();
        CURRENT.with(|c| c.borrow_mut().push(self.clone()));
        ScopeGuard { _not_send: std::marker::PhantomData }
    }

    /// The innermost instance installed on this thread, if any.
    pub fn try_current() -> Option<Telemetry> {
        CURRENT.with(|c| c.borrow().last().cloned())
    }

    /// The telemetry instance library code should record into: the
    /// innermost installed context, else a handle to the global
    /// instance. One-shot binaries that never `install()` see exactly
    /// the old global behavior.
    pub fn current() -> Telemetry {
        Self::try_current().unwrap_or_else(|| Telemetry::global().clone())
    }

    /// Opens a RAII span. While the guard lives, spans opened on the
    /// same thread nest under it; dropping the guard records the elapsed
    /// wall time against the `/`-joined path.
    ///
    /// Names are `&'static str` on purpose: hot paths must not allocate
    /// to be observable.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let generation = self.registry.span_generation.load(Ordering::Relaxed);
        let path = with_span_stack(self.registry.id, generation, |stack| {
            stack.push(name);
            stack.join("/")
        });
        SpanGuard { telemetry: self.clone(), path: Some(path), generation, start: Instant::now() }
    }

    /// Adds to a counter, saturating at `u64::MAX` (a tripped counter
    /// must pin at the ceiling, not wrap to a tiny value and fake a
    /// quiet run).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut counters = self.registry.counters.lock();
        let slot = counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Current value of a counter (0 if it has never been touched).
    /// Drivers snapshot this around a sweep to attribute deltas (e.g.
    /// CAS retries per iteration) in their iteration rows.
    pub fn counter_value(&self, name: &str) -> u64 {
        self.registry.counters.lock().get(name).copied().unwrap_or(0)
    }

    /// Sets a gauge's current level and folds it into the high-water
    /// mark.
    pub fn gauge_set(&self, name: &'static str, value: f64) {
        let mut gauges = self.registry.gauges.lock();
        let slot = gauges.entry(name).or_default();
        slot.last = value;
        slot.high_water = slot.high_water.max(value);
    }

    /// Records one sample into a named log-bucketed histogram (typically
    /// nanoseconds; see [`Histogram`]). Takes the registry lock — on hot
    /// paths, record into a private per-worker [`Histogram`] shard and
    /// fold it in once via [`Telemetry::histogram_merge`].
    pub fn histogram_record(&self, name: &'static str, value: u64) {
        self.registry.histograms.lock().entry(name).or_default().record(value);
    }

    /// Folds a privately recorded shard into a named histogram; merging
    /// is exact (see [`Histogram::merge`]). Empty shards are a no-op.
    pub fn histogram_merge(&self, name: &'static str, shard: &Histogram) {
        if shard.is_empty() {
            return;
        }
        self.registry.histograms.lock().entry(name).or_default().merge(shard);
    }

    /// Appends one row to the per-iteration convergence series (the
    /// report's `iterations` array). Rows are free-form JSON objects —
    /// solvers record what they have (k-eff, residual, sweep seconds,
    /// checkpoint markers) in execution order.
    pub fn append_iteration(&self, row: Json) {
        self.registry.iterations.lock().push(row);
    }

    /// Turns event-timeline tracing on or off and sets the global event
    /// budget (hard memory cap; see [`trace`]). Enabling pins the trace
    /// time origin. Off by default: with tracing off every recording
    /// call is a single relaxed atomic load.
    pub fn set_tracing(&self, enabled: bool, capacity_events: usize) {
        self.registry.trace.set_enabled(enabled, capacity_events);
    }

    /// Whether event-timeline tracing is currently enabled.
    #[inline]
    pub fn trace_enabled(&self) -> bool {
        self.registry.trace.enabled()
    }

    /// Labels the calling thread's timeline lane in the Chrome trace
    /// export (`thread_name` metadata). Lanes default to the OS thread
    /// name; drivers that multiplex work onto long-lived threads (e.g. a
    /// serve worker picking up a job) can re-label per unit of work.
    /// No-op when tracing is off.
    pub fn set_trace_thread_label(&self, label: &str) {
        if !self.trace_enabled() {
            return;
        }
        self.registry.trace.set_label(self.registry.id, label);
    }

    /// Events discarded after the trace budget filled.
    pub fn trace_dropped(&self) -> u64 {
        self.registry.trace.dropped()
    }

    /// Records an instant event (a tick mark on this thread's timeline).
    /// No-op (one atomic load) when tracing is off.
    pub fn trace_instant(&self, name: &str, args: &[(&str, Json)]) {
        if !self.trace_enabled() {
            return;
        }
        self.registry.trace.record(
            self.registry.id,
            TraceEvent {
                name: name.to_string(),
                ph: 'i',
                ts_us: trace::now_us(),
                dur_us: 0,
                args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            },
        );
    }

    /// Records a complete (`ph: "X"`) slice from an existing caller-side
    /// timer — hot paths that already hold an `Instant` for histogram
    /// timing can reuse it instead of opening a [`Telemetry::trace_scope`]
    /// (one fewer clock read). No-op when tracing is off.
    pub fn trace_complete_since(&self, name: &str, start: Instant, args: &[(&str, Json)]) {
        if !self.trace_enabled() {
            return;
        }
        self.registry.trace.record(
            self.registry.id,
            TraceEvent {
                name: name.to_string(),
                ph: 'X',
                ts_us: trace::instant_us(start),
                dur_us: start.elapsed().as_micros() as u64,
                args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            },
        );
    }

    /// Opens a RAII timeline slice; dropping the guard records one
    /// complete (`ph: "X"`) event covering the scope. Unlike
    /// [`Telemetry::span`] this leaves the span aggregates untouched —
    /// use it where a timeline entry is wanted without a new span path.
    /// Inert (one atomic load, no allocation) when tracing is off.
    pub fn trace_scope(&self, name: &str, args: &[(&str, Json)]) -> TraceScope {
        if !self.trace_enabled() {
            return TraceScope {
                telemetry: None,
                name: String::new(),
                args: Vec::new(),
                start: None,
            };
        }
        TraceScope {
            telemetry: Some(self.clone()),
            name: name.to_string(),
            args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
            start: Some(Instant::now()),
        }
    }

    /// The Chrome `trace_event` document for everything traced so far.
    pub fn trace_json(&self) -> Json {
        self.registry.trace.to_chrome_json()
    }

    /// Writes the Chrome trace JSON artifact, creating parent
    /// directories (open the file in `chrome://tracing` or Perfetto).
    pub fn write_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.trace_json().to_pretty_string())
    }

    /// Attaches run identification carried into the report.
    pub fn set_meta(&self, key: &str, value: &str) {
        self.registry.meta.lock().insert(key.to_string(), Json::Str(value.to_string()));
    }

    /// Attaches a numeric metadata entry.
    pub fn set_meta_num(&self, key: &str, value: f64) {
        self.registry.meta.lock().insert(key.to_string(), Json::Num(value));
    }

    /// Attaches a free-form JSON section (e.g. a neutron-balance
    /// report) carried into the report.
    pub fn set_section(&self, name: &str, value: Json) {
        self.registry.sections.lock().insert(name.to_string(), value);
    }

    /// Snapshots all aggregates into a serializable report.
    pub fn report(&self) -> RunReport {
        let mut counters: BTreeMap<String, u64> =
            self.registry.counters.lock().iter().map(|(&k, &v)| (k.to_string(), v)).collect();
        // Trace health surfaces as counters so report-diff can gate on
        // event loss without parsing the trace file itself.
        let stored = self.registry.trace.stored() as u64;
        let dropped = self.registry.trace.dropped();
        if stored > 0 || dropped > 0 {
            counters.insert("trace.events".to_string(), stored);
            counters.insert("trace.dropped".to_string(), dropped);
        }
        RunReport {
            meta: self.registry.meta.lock().clone(),
            spans: self.registry.spans.lock().clone(),
            counters,
            gauges: self.registry.gauges.lock().iter().map(|(&k, &v)| (k.to_string(), v)).collect(),
            histograms: self
                .registry
                .histograms
                .lock()
                .iter()
                .map(|(&k, h)| (k.to_string(), h.summary()))
                .collect(),
            iterations: self.registry.iterations.lock().clone(),
            sections: self.registry.sections.lock().clone(),
        }
    }

    /// Clears every aggregate — call at the start of a measured run when
    /// using the global instance. Also invalidates the span-name stacks
    /// of every thread (spans leaked by panics or `mem::forget` would
    /// otherwise prefix the next run's paths) and drops all trace
    /// events; a span still open across a `reset()` is cancelled rather
    /// than recorded into the fresh run.
    pub fn reset(&self) {
        self.registry.span_generation.fetch_add(1, Ordering::Relaxed);
        self.registry.spans.lock().clear();
        self.registry.counters.lock().clear();
        self.registry.gauges.lock().clear();
        self.registry.histograms.lock().clear();
        self.registry.iterations.lock().clear();
        self.registry.meta.lock().clear();
        self.registry.sections.lock().clear();
        self.registry.trace.reset();
    }

    fn record_span(&self, path: &str, seconds: f64) {
        self.registry.spans.lock().entry(path.to_string()).or_default().record(seconds);
    }
}

/// RAII guard created by [`Telemetry::span`]; records on drop. Owns a
/// handle (an `Arc` clone) so spans can be opened on temporaries like
/// `Telemetry::current().span("phase")`.
pub struct SpanGuard {
    telemetry: Telemetry,
    /// `Some` until the guard fires; `take`n in drop.
    path: Option<String>,
    /// The reset generation the guard was opened under; a mismatch at
    /// drop means `reset()` intervened and the span is cancelled.
    generation: u64,
    start: Instant,
}

impl SpanGuard {
    /// The `/`-joined path this guard will record under.
    pub fn path(&self) -> &str {
        self.path.as_deref().unwrap_or("")
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else { return };
        let registry = &self.telemetry.registry;
        if registry.span_generation.load(Ordering::Relaxed) != self.generation {
            // reset() ran while this span was open: the run it belongs
            // to is gone, and the thread stack was (or will be)
            // invalidated wholesale — do not pop or record.
            return;
        }
        with_span_stack(registry.id, self.generation, |stack| {
            stack.pop();
        });
        let elapsed = self.start.elapsed();
        self.telemetry.record_span(&path, elapsed.as_secs_f64());
        if self.telemetry.trace_enabled() {
            // Spans double as timeline slices, so enabling tracing lights
            // up every already-instrumented phase for free.
            registry.trace.record(
                registry.id,
                TraceEvent {
                    name: path,
                    ph: 'X',
                    ts_us: trace::instant_us(self.start),
                    dur_us: elapsed.as_micros() as u64,
                    args: Vec::new(),
                },
            );
        }
    }
}

/// RAII guard created by [`Telemetry::trace_scope`]; emits one complete
/// timeline event on drop (and nothing when tracing was off at open).
pub struct TraceScope {
    telemetry: Option<Telemetry>,
    name: String,
    args: Vec<(String, Json)>,
    start: Option<Instant>,
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let (Some(telemetry), Some(start)) = (self.telemetry.take(), self.start) else { return };
        let registry = &telemetry.registry;
        registry.trace.record(
            registry.id,
            TraceEvent {
                name: std::mem::take(&mut self.name),
                ph: 'X',
                ts_us: trace::instant_us(start),
                dur_us: start.elapsed().as_micros() as u64,
                args: std::mem::take(&mut self.args),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_into_slash_paths() {
        let t = Telemetry::new();
        {
            let _outer = t.span("eigen");
            {
                let _inner = t.span("transport_sweep");
            }
            {
                let _inner = t.span("transport_sweep");
            }
        }
        let r = t.report();
        assert_eq!(r.spans["eigen"].count, 1);
        assert_eq!(r.spans["eigen/transport_sweep"].count, 2);
        assert!(r.spans["eigen"].total_s >= r.spans["eigen/transport_sweep"].total_s);
    }

    #[test]
    fn sibling_spans_do_not_nest() {
        let t = Telemetry::new();
        {
            let _a = t.span("a");
        }
        {
            let _b = t.span("b");
        }
        let r = t.report();
        assert!(r.spans.contains_key("a"));
        assert!(r.spans.contains_key("b"));
        assert!(!r.spans.contains_key("a/b"));
    }

    #[test]
    fn spans_aggregate_across_rayon_worker_threads() {
        use rayon::prelude::*;
        let t = Telemetry::new();
        let _outer = t.span("launch");
        // Spawned workers have fresh span stacks, so their spans are
        // roots ("kernel"); the calling thread also executes tasks and
        // its stack still holds "launch", so its spans nest
        // ("launch/kernel"). How the 64 items split between the two is
        // scheduling-dependent — what must hold is that every completion
        // lands in the shared aggregate, none lost.
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..64usize).into_par_iter().for_each(|_| {
                let _s = t.span("kernel");
            });
        });
        drop(_outer);
        let r = t.report();
        let count = |path: &str| r.spans.get(path).map_or(0, |s| s.count);
        assert_eq!(count("kernel") + count("launch/kernel"), 64);
        assert_eq!(r.spans["launch"].count, 1);
        for s in ["kernel", "launch/kernel"] {
            if let Some(s) = r.spans.get(s) {
                assert!(s.min_s <= s.max_s);
            }
        }
    }

    #[test]
    fn install_scopes_current_and_restores_on_drop() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        // Nothing installed: current() falls back to the global instance.
        assert!(Telemetry::try_current().is_none());
        assert!(Arc::ptr_eq(&Telemetry::current().registry, &Telemetry::global().registry));
        {
            let _ga = a.install();
            assert!(Arc::ptr_eq(&Telemetry::current().registry, &a.registry));
            {
                let _gb = b.install();
                assert!(Arc::ptr_eq(&Telemetry::current().registry, &b.registry));
            }
            // Nested install popped; the outer context is back.
            assert!(Arc::ptr_eq(&Telemetry::current().registry, &a.registry));
        }
        assert!(Telemetry::try_current().is_none());
    }

    #[test]
    fn installed_context_reaches_rayon_workers() {
        use rayon::prelude::*;
        let sink = Telemetry::new();
        let _g = sink.install();
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        pool.install(|| {
            (0..1000usize).into_par_iter().for_each(|_| {
                Telemetry::current().counter_add("ctx.items", 1);
            });
        });
        // Every item — including those executed on spawned workers —
        // recorded into the installed sink, none into the global.
        assert_eq!(sink.report().counter("ctx.items"), 1000);
        assert_eq!(Telemetry::global().counter_value("ctx.items"), 0);
    }

    #[test]
    fn concurrent_installs_stay_thread_isolated() {
        std::thread::scope(|s| {
            for tag in 0..4u64 {
                s.spawn(move || {
                    let sink = Telemetry::new();
                    let _g = sink.install();
                    for _ in 0..100 {
                        Telemetry::current().counter_add("ctx.tagged", tag + 1);
                    }
                    assert_eq!(sink.report().counter("ctx.tagged"), 100 * (tag + 1));
                });
            }
        });
        assert_eq!(Telemetry::global().counter_value("ctx.tagged"), 0);
    }

    #[test]
    fn span_guard_outlives_its_temporary_handle() {
        let sink = Telemetry::new();
        let _g = sink.install();
        {
            // The handle `current()` returns is a temporary; the guard
            // must own its clone to record on drop.
            let _s = Telemetry::current().span("owned");
        }
        assert_eq!(sink.report().spans["owned"].count, 1);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let t = Telemetry::new();
        t.counter_add("big", u64::MAX - 1);
        t.counter_add("big", 10);
        t.counter_add("big", 10);
        assert_eq!(t.report().counter("big"), u64::MAX);
    }

    #[test]
    fn counters_accumulate_from_many_threads() {
        let t = Telemetry::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        t.counter_add("hits", 1);
                    }
                });
            }
        });
        assert_eq!(t.report().counter("hits"), 8000);
    }

    #[test]
    fn gauges_keep_high_water() {
        let t = Telemetry::new();
        t.gauge_set("pool", 100.0);
        t.gauge_set("pool", 400.0);
        t.gauge_set("pool", 50.0);
        let g = t.report().gauges["pool"];
        assert_eq!(g.last, 50.0);
        assert_eq!(g.high_water, 400.0);
    }

    #[test]
    fn reset_clears_everything() {
        let t = Telemetry::new();
        t.counter_add("c", 1);
        t.gauge_set("g", 1.0);
        {
            let _s = t.span("s");
        }
        t.set_meta("case", "x");
        t.histogram_record("h", 42);
        t.append_iteration(Json::Obj(vec![("it".into(), Json::Uint(1))]));
        t.set_tracing(true, 64);
        t.trace_instant("tick", &[]);
        t.reset();
        let r = t.report();
        assert!(r.counters.is_empty());
        assert!(r.gauges.is_empty());
        assert!(r.spans.is_empty());
        assert!(r.meta.is_empty());
        assert!(r.histograms.is_empty());
        assert!(r.iterations.is_empty());
    }

    /// Regression: a span leaked on this thread (panicking scope,
    /// `mem::forget`) used to poison the thread-local stack forever —
    /// every later span on the thread nested under the ghost. `reset()`
    /// must invalidate the stale stack.
    #[test]
    fn reset_clears_leaked_span_stacks() {
        let t = Telemetry::new();
        std::mem::forget(t.span("orphan"));
        t.reset();
        {
            let _s = t.span("fresh");
        }
        let r = t.report();
        assert!(r.spans.contains_key("fresh"), "got {:?}", r.spans.keys().collect::<Vec<_>>());
        assert!(!r.spans.contains_key("orphan/fresh"), "leaked span still prefixes paths");
    }

    #[test]
    fn span_open_across_reset_is_cancelled_not_recorded() {
        let t = Telemetry::new();
        let guard = t.span("stale");
        t.reset();
        drop(guard);
        assert!(t.report().spans.is_empty(), "a span from before reset() must not record");
        // And the next span path is clean.
        {
            let _s = t.span("next");
        }
        assert!(t.report().spans.contains_key("next"));
    }

    #[test]
    fn instances_do_not_share_span_nesting() {
        let a = Telemetry::new();
        let b = Telemetry::new();
        let _outer = a.span("outer");
        {
            let _inner = b.span("inner");
        }
        assert!(b.report().spans.contains_key("inner"), "instance b sees its own root span");
        assert!(!b.report().spans.contains_key("outer/inner"));
    }

    #[test]
    fn histogram_shards_merge_into_the_registry() {
        let t = Telemetry::new();
        let mut shard_a = Histogram::new();
        let mut shard_b = Histogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                shard_a.record(v)
            } else {
                shard_b.record(v)
            }
        }
        t.histogram_merge("lat", &shard_a);
        t.histogram_merge("lat", &shard_b);
        t.histogram_record("lat", 1_000_000);
        let h = t.report().histograms["lat"];
        assert_eq!(h.count, 101);
        assert!(h.max >= 1_000_000);
        // Empty shards merge as a no-op (no entry created).
        t.histogram_merge("untouched", &Histogram::new());
        assert!(!t.report().histograms.contains_key("untouched"));
    }

    #[test]
    fn iteration_rows_keep_execution_order() {
        let t = Telemetry::new();
        for it in 1..=3u64 {
            t.append_iteration(Json::Obj(vec![("it".into(), Json::Uint(it))]));
        }
        let rows = t.report().iterations;
        let its: Vec<_> =
            rows.iter().map(|r| r.get("it").and_then(Json::as_u64).unwrap()).collect();
        assert_eq!(its, vec![1, 2, 3]);
    }

    #[test]
    fn tracing_feeds_spans_scopes_and_counters() {
        let t = Telemetry::new();
        t.set_tracing(true, 1024);
        {
            let _s = t.span("sweep");
        }
        {
            let _ts = t.trace_scope("exchange", &[("bytes", Json::Uint(4096))]);
        }
        t.trace_instant("checkpoint", &[("it", Json::Uint(7))]);
        let doc = t.trace_json();
        let Some(Json::Arr(events)) = doc.get("traceEvents") else { panic!("no traceEvents") };
        let names: Vec<_> =
            events.iter().filter_map(|e| e.get("name").and_then(Json::as_str)).collect();
        assert!(names.contains(&"sweep"), "span slice missing: {names:?}");
        assert!(names.contains(&"exchange"));
        assert!(names.contains(&"checkpoint"));
        let r = t.report();
        assert_eq!(r.counter("trace.events"), 3);
        assert_eq!(r.counter("trace.dropped"), 0);
        // Spans still aggregate normally alongside the timeline.
        assert_eq!(r.spans["sweep"].count, 1);
    }

    #[test]
    fn tracing_off_records_no_events_or_counters() {
        let t = Telemetry::new();
        {
            let _s = t.span("sweep");
        }
        t.trace_instant("tick", &[]);
        let _ = t.trace_scope("scope", &[]);
        let r = t.report();
        assert_eq!(r.counter("trace.events"), 0);
        assert!(!r.counters.contains_key("trace.events"));
        let Some(Json::Arr(events)) = t.trace_json().get("traceEvents").cloned() else {
            panic!("no traceEvents")
        };
        assert!(events.is_empty());
    }

    #[test]
    fn full_report_round_trips_through_json() {
        let t = Telemetry::new();
        t.set_meta("case", "unit");
        {
            let _s = t.span("phase");
            t.counter_add("segments", 12345);
            t.gauge_set("bytes", 9.5e6);
        }
        let r = t.report();
        let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
        assert_eq!(back.counter("segments"), 12345);
        assert_eq!(back.spans["phase"].count, 1);
        assert_eq!(back.gauges["bytes"].high_water, 9.5e6);
        assert_eq!(back.meta["case"], Json::Str("unit".into()));
    }

    proptest::proptest! {
        #[test]
        fn arbitrary_counter_sets_round_trip(
            values in proptest::collection::vec(0u64..1_000_000_000, 1..20)
        ) {
            let t = Telemetry::new();
            // Distinct static names are limited; fold values into one
            // counter and compare the saturating sum.
            let mut expected: u64 = 0;
            for v in &values {
                t.counter_add("acc", *v);
                expected = expected.saturating_add(*v);
            }
            let r = t.report();
            let back = RunReport::from_json_str(&r.to_json_string()).unwrap();
            proptest::prop_assert_eq!(back.counter("acc"), expected);
        }
    }
}
