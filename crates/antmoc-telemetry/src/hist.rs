//! Log-bucketed latency/size histograms with mergeable per-worker shards.
//!
//! The paper's load-mapping claims (§5.4) rest on *distributions* — per-CU
//! segment load, per-rank traffic — not totals, and regression triage needs
//! tail percentiles (p99 track latency, steal-wait spikes), which span
//! min/max cannot show. [`Histogram`] is an HDR-style fixed-footprint
//! histogram over `u64` values (nanoseconds, bytes, retry counts):
//!
//! * values below 16 get exact unit buckets;
//! * larger values land in one of 16 linear sub-buckets per power-of-two
//!   octave, bounding relative bucket error at ~6.25% across the full
//!   `u64` range;
//! * recording is a single array increment — no allocation, no locking —
//!   so each worker can own a private shard on the sweep hot path and
//!   [`Histogram::merge`] them after the region, losslessly: merging N
//!   shards yields bit-identical counts (and therefore percentiles) to
//!   recording the same values serially.
//!
//! Reports carry only the [`HistogramSummary`] quantiles; the full bucket
//! array never leaves the process.

/// Exact unit buckets below this value; also the sub-buckets per octave.
const SUB: usize = 16;
/// log2(SUB): values >= SUB keep this many significant bits.
const SUB_BITS: usize = 4;
/// 16 exact low buckets + 16 sub-buckets for each octave 2^4..2^63.
const NUM_BUCKETS: usize = SUB + (64 - SUB_BITS) * SUB;

/// Bucket index for a value (total order preserved across buckets).
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // SUB_BITS..=63
        let sub = ((v >> (exp - SUB_BITS)) as usize) & (SUB - 1);
        SUB + (exp - SUB_BITS) * SUB + sub
    }
}

/// The largest value that maps to bucket `i` (used as the reported
/// quantile value, so percentiles are conservative upper bounds).
fn bucket_high(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let exp = SUB_BITS + (i - SUB) / SUB;
        let sub = ((i - SUB) % SUB) as u64;
        let low = (1u64 << exp).saturating_add(sub << (exp - SUB_BITS));
        low.saturating_add((1u64 << (exp - SUB_BITS)) - 1)
    }
}

/// A fixed-footprint log-bucketed histogram over `u64` samples.
#[derive(Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.percentile(50.0))
            .field("p99", &self.percentile(99.0))
            .finish()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self { counts: vec![0; NUM_BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }

    /// Records one sample. O(1), allocation-free.
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram (e.g. a per-worker shard) into this one.
    /// Merging shards is exact: bucket counts add, so every percentile of
    /// the merge equals the percentile of serial recording.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of the recorded samples (exact, from the running sum).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at the given percentile (`0.0..=100.0`): the upper edge of
    /// the bucket holding the target rank, clamped to the recorded
    /// min/max so p0/p100 are exact. Returns 0 when empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil() as u64;
        let target = target.clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Saturating sum of all recorded samples (the Prometheus `_sum`
    /// series of the exposition).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Iterates the non-empty buckets as `(upper_edge, count)` pairs in
    /// ascending value order — the exact bucket contents, for cumulative
    /// (`le=`) exposition renderings and bit-exact merge checks.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts.iter().enumerate().filter(|(_, &c)| c > 0).map(|(i, &c)| (bucket_high(i), c))
    }

    /// Snapshot of the quantiles that land in the run report.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            max: self.max(),
        }
    }
}

/// The serializable quantile snapshot of one histogram (see the
/// `histograms` section of the run-report schema in `report.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    pub count: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_preserve_order_and_cover_u64() {
        let mut prev = 0;
        for &v in &[0u64, 1, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < NUM_BUCKETS, "index {i} out of range for {v}");
            assert!(i >= prev, "bucket order broken at {v}");
            assert!(bucket_high(i) >= v, "upper edge below value at {v}");
            prev = i;
        }
        assert_eq!(bucket_high(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.0), 0);
        assert_eq!(h.percentile(100.0), 15);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert!((h.mean() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn relative_bucket_error_is_bounded() {
        // Any value's bucket upper edge overshoots by < 2^-SUB_BITS.
        for &v in &[16u64, 100, 12345, 1 << 30, (1 << 40) + 7] {
            let high = bucket_high(bucket_index(v));
            assert!(high >= v);
            let rel = (high - v) as f64 / v as f64;
            assert!(rel < 1.0 / SUB as f64, "error too large at {v}");
        }
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.summary(), HistogramSummary::default());
    }

    #[test]
    fn merging_empty_is_identity() {
        let mut h = Histogram::new();
        h.record(42);
        let snapshot = h.clone();
        h.merge(&Histogram::new());
        assert_eq!(h, snapshot);
    }

    /// The satellite property: merging N per-worker shards must equal
    /// recording the same samples serially — bucket counts and every
    /// percentile — across worker counts {1, 2, 8}.
    fn shards_equal_serial(values: &[u64], workers: usize) {
        let mut serial = Histogram::new();
        for &v in values {
            serial.record(v);
        }
        let mut shards = vec![Histogram::new(); workers];
        for (i, &v) in values.iter().enumerate() {
            shards[i % workers].record(v);
        }
        let mut merged = Histogram::new();
        for s in &shards {
            merged.merge(s);
        }
        assert_eq!(merged, serial, "merge != serial for {workers} workers");
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(merged.percentile(p), serial.percentile(p), "p{p} mismatch");
        }
        assert_eq!(merged.summary(), serial.summary());
    }

    proptest::proptest! {
        #[test]
        fn merged_shards_match_serial_recording(
            values in proptest::collection::vec(0u64..u64::MAX, 1..200)
        ) {
            for workers in [1usize, 2, 8] {
                shards_equal_serial(&values, workers);
            }
        }

        #[test]
        fn percentiles_are_monotone_and_bracketed(
            values in proptest::collection::vec(0u64..1_000_000_000, 1..100)
        ) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let mut prev = 0;
            for p in [0.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0] {
                let q = h.percentile(p);
                proptest::prop_assert!(q >= prev, "percentiles must be monotone");
                proptest::prop_assert!(q >= h.min() && q <= h.max());
                prev = q;
            }
        }
    }
}
