//! A weighted graph and a balanced k-way partitioner (ParMETIS stand-in).
//!
//! L1 only needs a decent balanced partition of a small graph (the paper
//! uses ~10 sub-geometries per node), so a greedy balanced growth followed
//! by Kernighan–Lin style boundary refinement is entirely adequate — the
//! same ~5 % L1 gain regime the paper reports.

/// An undirected graph with node and edge weights.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    /// Node weights (computational load of each sub-geometry).
    pub node_weights: Vec<f64>,
    /// Edges `(a, b, weight)` with `a != b`; weight models communication
    /// volume across the shared face.
    pub edges: Vec<(u32, u32, f64)>,
}

impl Graph {
    /// Creates a graph with the given node weights and no edges.
    pub fn with_nodes(node_weights: Vec<f64>) -> Self {
        Self { node_weights, edges: Vec::new() }
    }

    /// Adds an undirected edge.
    pub fn add_edge(&mut self, a: usize, b: usize, weight: f64) {
        assert!(a != b && a < self.node_weights.len() && b < self.node_weights.len());
        self.edges.push((a as u32, b as u32, weight));
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.node_weights.len()
    }

    pub fn is_empty(&self) -> bool {
        self.node_weights.is_empty()
    }

    /// Adjacency lists `(neighbor, weight)`.
    fn adjacency(&self) -> Vec<Vec<(u32, f64)>> {
        let mut adj = vec![Vec::new(); self.len()];
        for &(a, b, w) in &self.edges {
            adj[a as usize].push((b, w));
            adj[b as usize].push((a, w));
        }
        adj
    }
}

/// A k-way assignment of graph nodes to parts.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// `assignment[node] = part`.
    pub assignment: Vec<u32>,
    pub num_parts: usize,
}

impl Partition {
    /// Total node weight per part.
    pub fn part_loads(&self, graph: &Graph) -> Vec<f64> {
        let mut loads = vec![0.0; self.num_parts];
        for (n, &p) in self.assignment.iter().enumerate() {
            loads[p as usize] += graph.node_weights[n];
        }
        loads
    }

    /// Summed weight of edges crossing part boundaries.
    pub fn cut_weight(&self, graph: &Graph) -> f64 {
        graph
            .edges
            .iter()
            .filter(|(a, b, _)| self.assignment[*a as usize] != self.assignment[*b as usize])
            .map(|(_, _, w)| w)
            .sum()
    }
}

/// Balanced k-way partitioning: greedy growth from the heaviest nodes,
/// then boundary-move refinement minimising the maximum part load with the
/// cut weight as tie-breaker.
pub fn partition_kway(graph: &Graph, k: usize) -> Partition {
    assert!(k >= 1);
    let n = graph.len();
    assert!(n >= k, "cannot split {n} nodes into {k} parts");
    let adj = graph.adjacency();

    // Greedy: sort nodes by descending weight, place each on the part
    // that stays lightest, preferring parts it already has edges to when
    // loads tie closely (LPT with affinity).
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| graph.node_weights[b].partial_cmp(&graph.node_weights[a]).unwrap());
    let mut assignment = vec![u32::MAX; n];
    let mut loads = vec![0.0f64; k];
    for &node in &order {
        // Affinity bonus: edge weight to each part.
        let mut affinity = vec![0.0f64; k];
        for &(nb, w) in &adj[node] {
            let p = assignment[nb as usize];
            if p != u32::MAX {
                affinity[p as usize] += w;
            }
        }
        let mut best = 0usize;
        let mut best_score = f64::INFINITY;
        for p in 0..k {
            // Lower is better: projected load, slightly discounted by
            // affinity to keep neighbours together.
            let score = loads[p] + graph.node_weights[node] - 1e-3 * affinity[p];
            if score < best_score {
                best_score = score;
                best = p;
            }
        }
        assignment[node] = best as u32;
        loads[best] += graph.node_weights[node];
    }

    // Refinement: single-node moves that reduce (max load, cut).
    let mut part = Partition { assignment, num_parts: k };
    refine(&mut part, graph, &adj, 4 * n);
    part
}

fn refine(part: &mut Partition, graph: &Graph, adj: &[Vec<(u32, f64)>], max_moves: usize) {
    let k = part.num_parts;
    let mut loads = part.part_loads(graph);
    let mut counts = vec![0usize; k];
    for &p in &part.assignment {
        counts[p as usize] += 1;
    }
    let mut moves = 0usize;
    loop {
        let mut improved = false;
        for node in 0..graph.len() {
            let from = part.assignment[node] as usize;
            // Never empty a part: an empty node is wasted hardware even
            // when the max load is unaffected.
            if counts[from] <= 1 {
                continue;
            }
            let w = graph.node_weights[node];
            // Current objective.
            let cur_max = loads.iter().cloned().fold(0.0, f64::max);
            let mut best: Option<(usize, f64, f64)> = None; // (part, new_max, cut_delta)
            let mut cut_to = vec![0.0f64; k];
            for &(nb, ew) in &adj[node] {
                cut_to[part.assignment[nb as usize] as usize] += ew;
            }
            for to in 0..k {
                if to == from {
                    continue;
                }
                let mut l = loads.clone();
                l[from] -= w;
                l[to] += w;
                let new_max = l.iter().cloned().fold(0.0, f64::max);
                let cut_delta = cut_to[from] - cut_to[to];
                let better =
                    new_max < cur_max - 1e-12 || (new_max < cur_max + 1e-12 && cut_delta < -1e-12);
                if better {
                    match best {
                        Some((_, bm, bc)) if (new_max, cut_delta) >= (bm, bc) => {}
                        _ => best = Some((to, new_max, cut_delta)),
                    }
                }
            }
            if let Some((to, _, _)) = best {
                loads[from] -= w;
                loads[to] += w;
                counts[from] -= 1;
                counts[to] += 1;
                part.assignment[node] = to as u32;
                improved = true;
                moves += 1;
                if moves >= max_moves {
                    return;
                }
            }
        }
        if !improved {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn grid_graph(nx: usize, ny: usize, mut weights: impl FnMut(usize, usize) -> f64) -> Graph {
        let mut w = Vec::with_capacity(nx * ny);
        for y in 0..ny {
            for x in 0..nx {
                w.push(weights(x, y));
            }
        }
        let mut g = Graph::with_nodes(w);
        for y in 0..ny {
            for x in 0..nx {
                let i = y * nx + x;
                if x + 1 < nx {
                    g.add_edge(i, i + 1, 1.0);
                }
                if y + 1 < ny {
                    g.add_edge(i, i + nx, 1.0);
                }
            }
        }
        g
    }

    #[test]
    fn uniform_grid_partitions_evenly() {
        let g = grid_graph(4, 4, |_, _| 1.0);
        let p = partition_kway(&g, 4);
        let loads = p.part_loads(&g);
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let avg: f64 = loads.iter().sum::<f64>() / 4.0;
        assert!((max / avg - 1.0).abs() < 1e-9, "loads {loads:?}");
    }

    #[test]
    fn skewed_weights_stay_balanced() {
        // Reflector-like: one heavy corner region.
        let g = grid_graph(6, 6, |x, y| if x < 2 && y < 2 { 10.0 } else { 1.0 });
        let p = partition_kway(&g, 4);
        let loads = p.part_loads(&g);
        let max = loads.iter().cloned().fold(0.0, f64::max);
        let avg: f64 = loads.iter().sum::<f64>() / 4.0;
        assert!(max / avg < 1.25, "uniformity {} loads {loads:?}", max / avg);
    }

    #[test]
    fn refinement_beats_round_robin_on_skew() {
        let g = grid_graph(8, 8, |x, _| (x + 1) as f64);
        let k = 4;
        // Round-robin baseline (the "no balance" strategy).
        let rr =
            Partition { assignment: (0..g.len()).map(|i| (i % k) as u32).collect(), num_parts: k };
        let smart = partition_kway(&g, k);
        let uni = |p: &Partition| {
            let l = p.part_loads(&g);
            l.iter().cloned().fold(0.0, f64::max) / (l.iter().sum::<f64>() / k as f64)
        };
        assert!(uni(&smart) <= uni(&rr) + 1e-12);
    }

    #[test]
    fn single_part_assigns_everything_to_zero() {
        let g = grid_graph(3, 3, |_, _| 1.0);
        let p = partition_kway(&g, 1);
        assert!(p.assignment.iter().all(|&a| a == 0));
        assert_eq!(p.cut_weight(&g), 0.0);
    }

    #[test]
    fn cut_weight_counts_cross_edges() {
        let mut g = Graph::with_nodes(vec![1.0, 1.0]);
        g.add_edge(0, 1, 3.5);
        let p = Partition { assignment: vec![0, 1], num_parts: 2 };
        assert_eq!(p.cut_weight(&g), 3.5);
        let p2 = Partition { assignment: vec![0, 0], num_parts: 2 };
        assert_eq!(p2.cut_weight(&g), 0.0);
    }

    proptest! {
        #[test]
        fn partition_is_total_and_in_range(
            nx in 2usize..7, ny in 2usize..7, k in 1usize..5, seed in 0u64..100
        ) {
            prop_assume!(nx * ny >= k);
            let mut s = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            let g = grid_graph(nx, ny, |_, _| {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                1.0 + ((s >> 33) % 100) as f64 / 10.0
            });
            let p = partition_kway(&g, k);
            prop_assert_eq!(p.assignment.len(), g.len());
            prop_assert!(p.assignment.iter().all(|&a| (a as usize) < k));
            // Every part non-empty when k <= n.
            let loads = p.part_loads(&g);
            prop_assert!(loads.iter().all(|&l| l > 0.0), "empty part: {:?}", loads);
        }
    }
}
