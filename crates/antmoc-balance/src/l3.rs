//! L3: track → CU mapping (§4.2.3, Fig. 5(3)): sort by descending work,
//! deal round-robin.

/// Sorts items by descending weight and deals them round-robin into
/// `bins`. Returns the per-bin item index lists. This is the generic form
/// of the device solver's segment-sorted CU assignment.
pub fn sorted_round_robin(weights: &[u64], bins: usize) -> Vec<Vec<u32>> {
    assert!(bins >= 1);
    let mut order: Vec<u32> = (0..weights.len() as u32).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i as usize]));
    let mut out = vec![Vec::with_capacity(weights.len() / bins + 1); bins];
    for (pos, i) in order.into_iter().enumerate() {
        out[pos % bins].push(i);
    }
    out
}

/// The no-L3 baseline: grid-stride assignment (item `i` to bin
/// `i % bins`), i.e. Algorithm 1's natural mapping.
pub fn grid_stride(num_items: usize, bins: usize) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::with_capacity(num_items / bins + 1); bins];
    for i in 0..num_items as u32 {
        out[i as usize % bins].push(i);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::load_uniformity;
    use proptest::prelude::*;

    fn bin_loads(assign: &[Vec<u32>], weights: &[u64]) -> Vec<f64> {
        assign.iter().map(|b| b.iter().map(|&i| weights[i as usize] as f64).sum()).collect()
    }

    #[test]
    fn sorted_round_robin_balances_heavy_tail() {
        // Track segment counts have a heavy tail (long tracks through the
        // core); round-robin on the sorted order nearly equalises bins.
        let weights: Vec<u64> = (0..1000).map(|i| 1 + (i * i) % 97).collect();
        let smart = sorted_round_robin(&weights, 8);
        let naive = grid_stride(weights.len(), 8);
        let u_smart = load_uniformity(&bin_loads(&smart, &weights));
        let u_naive = load_uniformity(&bin_loads(&naive, &weights));
        assert!(u_smart <= u_naive + 1e-12);
        assert!(u_smart < 1.02, "sorted dealing should be near-perfect: {u_smart}");
    }

    proptest! {
        #[test]
        fn every_item_lands_in_exactly_one_bin(
            n in 1usize..200, bins in 1usize..16, seed in 0u64..50
        ) {
            let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let weights: Vec<u64> = (0..n).map(|_| {
                s ^= s << 13; s ^= s >> 7; s ^= s << 17;
                s % 1000
            }).collect();
            let assign = sorted_round_robin(&weights, bins);
            let mut seen = vec![0u8; n];
            for b in &assign {
                for &i in b {
                    seen[i as usize] += 1;
                }
            }
            prop_assert!(seen.iter().all(|&c| c == 1));
            // Bin sizes differ by at most one item.
            let sizes: Vec<usize> = assign.iter().map(Vec::len).collect();
            let max = sizes.iter().max().unwrap();
            let min = sizes.iter().min().unwrap();
            prop_assert!(max - min <= 1);
        }
    }
}
