//! The three-level load-mapping strategy (§4.2 of the paper).
//!
//! * **L1** ([`l1`]) — sub-geometries, weighted by their predicted
//!   computational load (segment counts, Eq. 4), are grouped onto nodes by
//!   a balanced k-way graph partitioner ([`graph`], the ParMETIS stand-in;
//!   DESIGN.md documents the substitution).
//! * **L2** ([`l2`]) — a node's fused sub-geometry group is split across
//!   its GPUs by azimuthal angle, balancing per-angle segment loads.
//! * **L3** — 3D tracks inside one GPU are sorted by segment count and
//!   dealt round-robin to CUs (implemented next to the device solver in
//!   `antmoc_solver::device::segment_sorted_assignment`; the generic
//!   sorting helper lives in [`l3`]).
//!
//! [`metrics`] provides the paper's §5.4 *load uniformity index*
//! (`max / avg`, 1.0 = perfect balance).

pub mod graph;
pub mod l1;
pub mod l2;
pub mod l3;
pub mod metrics;
pub mod rcb;

pub use graph::{Graph, Partition};
pub use l1::{map_subdomains_to_nodes, rebalance_on_loss, L1Mapping, RebalancePlan};
pub use l2::{map_angles_to_gpus, L2Mapping};
pub use l3::sorted_round_robin;
pub use metrics::load_uniformity;
pub use rcb::rcb_partition;
