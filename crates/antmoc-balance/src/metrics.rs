//! Load-balance metrics.

/// The paper's §5.4 load uniformity index: `max(load) / avg(load)`.
/// Always >= 1 for non-empty, non-zero loads; 1.0 means perfect balance.
pub fn load_uniformity(loads: &[f64]) -> f64 {
    assert!(!loads.is_empty());
    let max = loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let avg = loads.iter().sum::<f64>() / loads.len() as f64;
    assert!(avg > 0.0, "total load must be positive");
    max / avg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_balance_is_one() {
        assert_eq!(load_uniformity(&[2.0, 2.0, 2.0]), 1.0);
    }

    #[test]
    fn hot_spot_raises_index() {
        let u = load_uniformity(&[4.0, 1.0, 1.0]);
        assert!((u - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_total_load_panics() {
        load_uniformity(&[0.0, 0.0]);
    }
}
