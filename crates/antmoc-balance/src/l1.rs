//! L1: sub-geometry → node mapping by balanced graph partitioning
//! (§4.2.1, Fig. 5(1)).

use crate::graph::{partition_kway, Graph, Partition};

/// The L1 product: which node owns each sub-geometry.
#[derive(Debug, Clone)]
pub struct L1Mapping {
    /// `node_of[subdomain] = node`.
    pub node_of: Vec<u32>,
    pub num_nodes: usize,
    /// Per-node summed load.
    pub node_loads: Vec<f64>,
    /// Cut weight (proxy for inter-node communication volume).
    pub cut: f64,
}

/// Builds the sub-geometry graph of a uniform `nx x ny x nz` decomposition
/// (nodes weighted by predicted load, edges by shared-face area) and
/// partitions it onto `num_nodes` nodes.
///
/// `loads[subdomain]` uses the decomposition's rank ordering
/// (`(iz * ny + iy) * nx + ix`).
pub fn map_subdomains_to_nodes(
    dims: (usize, usize, usize),
    loads: &[f64],
    face_areas: (f64, f64, f64),
    num_nodes: usize,
) -> L1Mapping {
    let (nx, ny, nz) = dims;
    assert_eq!(loads.len(), nx * ny * nz);
    let rank = |ix: usize, iy: usize, iz: usize| (iz * ny + iy) * nx + ix;

    let mut graph = Graph::with_nodes(loads.to_vec());
    let (ax, ay, az) = face_areas;
    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                let me = rank(ix, iy, iz);
                if ix + 1 < nx {
                    graph.add_edge(me, rank(ix + 1, iy, iz), ax);
                }
                if iy + 1 < ny {
                    graph.add_edge(me, rank(ix, iy + 1, iz), ay);
                }
                if iz + 1 < nz {
                    graph.add_edge(me, rank(ix, iy, iz + 1), az);
                }
            }
        }
    }
    let part: Partition = partition_kway(&graph, num_nodes);
    let node_loads = part.part_loads(&graph);
    let cut = part.cut_weight(&graph);
    L1Mapping { node_of: part.assignment, num_nodes, node_loads, cut }
}

/// The no-balance baseline: subdomains dealt to nodes in rank order
/// (contiguous blocks), the OpenMOC-style assignment the paper compares
/// against.
pub fn block_baseline(num_subdomains: usize, num_nodes: usize, loads: &[f64]) -> L1Mapping {
    assert_eq!(loads.len(), num_subdomains);
    let per = num_subdomains.div_ceil(num_nodes);
    let node_of: Vec<u32> = (0..num_subdomains).map(|i| (i / per) as u32).collect();
    let mut node_loads = vec![0.0; num_nodes];
    for (i, &n) in node_of.iter().enumerate() {
        node_loads[n as usize] += loads[i];
    }
    L1Mapping { node_of, num_nodes, node_loads, cut: 0.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::load_uniformity;

    /// C5G7-like load pattern: fine-meshed reflector subdomains are much
    /// heavier than core subdomains (the §5.4 setup).
    fn skewed_loads(nx: usize, ny: usize, nz: usize) -> Vec<f64> {
        let mut v = Vec::new();
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let reflector = ix + 1 == nx || iy + 1 == ny || iz + 1 == nz;
                    v.push(if reflector { 3.0 } else { 1.0 });
                }
            }
        }
        v
    }

    #[test]
    fn l1_covers_all_subdomains() {
        let loads = skewed_loads(4, 4, 2);
        let m = map_subdomains_to_nodes((4, 4, 2), &loads, (1.0, 1.0, 1.0), 4);
        assert_eq!(m.node_of.len(), 32);
        assert!(m.node_of.iter().all(|&n| (n as usize) < 4));
        assert!((m.node_loads.iter().sum::<f64>() - loads.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn l1_beats_block_baseline_on_skewed_loads() {
        let loads = skewed_loads(4, 4, 4);
        let nodes = 8;
        let l1 = map_subdomains_to_nodes((4, 4, 4), &loads, (1.0, 1.0, 1.0), nodes);
        let base = block_baseline(64, nodes, &loads);
        let u1 = load_uniformity(&l1.node_loads);
        let u0 = load_uniformity(&base.node_loads);
        assert!(u1 <= u0 + 1e-12, "L1 uniformity {u1} vs baseline {u0}");
        assert!(u1 < 1.15, "L1 should be near-balanced, got {u1}");
    }

    #[test]
    fn l1_keeps_neighbours_together_reasonably() {
        // The cut should be far below the total edge weight (a random
        // assignment cuts ~ (k-1)/k of the edges).
        let loads = skewed_loads(4, 4, 2);
        let m = map_subdomains_to_nodes((4, 4, 2), &loads, (1.0, 1.0, 1.0), 4);
        // Total edge weight of the 4x4x2 grid graph:
        let total_edges = (3 * 4 * 2 + 4 * 3 * 2 + 4 * 4) as f64;
        assert!(m.cut < 0.8 * total_edges, "cut {} of {total_edges}", m.cut);
    }
}
