//! L1: sub-geometry → node mapping by balanced graph partitioning
//! (§4.2.1, Fig. 5(1)).

use crate::graph::{partition_kway, Graph, Partition};

/// The L1 product: which node owns each sub-geometry.
#[derive(Debug, Clone)]
pub struct L1Mapping {
    /// `node_of[subdomain] = node`.
    pub node_of: Vec<u32>,
    pub num_nodes: usize,
    /// Per-node summed load.
    pub node_loads: Vec<f64>,
    /// Cut weight (proxy for inter-node communication volume).
    pub cut: f64,
}

/// Builds the sub-geometry graph of a uniform `nx x ny x nz` decomposition
/// (nodes weighted by predicted load, edges by shared-face area) and
/// partitions it onto `num_nodes` nodes.
///
/// `loads[subdomain]` uses the decomposition's rank ordering
/// (`(iz * ny + iy) * nx + ix`).
pub fn map_subdomains_to_nodes(
    dims: (usize, usize, usize),
    loads: &[f64],
    face_areas: (f64, f64, f64),
    num_nodes: usize,
) -> L1Mapping {
    let (nx, ny, nz) = dims;
    assert_eq!(loads.len(), nx * ny * nz);
    let rank = |ix: usize, iy: usize, iz: usize| (iz * ny + iy) * nx + ix;

    let mut graph = Graph::with_nodes(loads.to_vec());
    let (ax, ay, az) = face_areas;
    for iz in 0..nz {
        for iy in 0..ny {
            for ix in 0..nx {
                let me = rank(ix, iy, iz);
                if ix + 1 < nx {
                    graph.add_edge(me, rank(ix + 1, iy, iz), ax);
                }
                if iy + 1 < ny {
                    graph.add_edge(me, rank(ix, iy + 1, iz), ay);
                }
                if iz + 1 < nz {
                    graph.add_edge(me, rank(ix, iy, iz + 1), az);
                }
            }
        }
    }
    let part: Partition = partition_kway(&graph, num_nodes);
    let node_loads = part.part_loads(&graph);
    let cut = part.cut_weight(&graph);
    L1Mapping { node_of: part.assignment, num_nodes, node_loads, cut }
}

/// A degradation rebalance: the new mapping over the surviving nodes,
/// plus how many subdomains had to move.
#[derive(Debug, Clone)]
pub struct RebalancePlan {
    /// The L1 mapping over the surviving node count (node indices are in
    /// the compacted survivor space `0..num_survivors`).
    pub mapping: L1Mapping,
    /// Subdomains whose owner changed versus `prev` (orphans of the lost
    /// node always count).
    pub migrated: usize,
}

/// Re-runs the L1 partition after a node loss, over `num_survivors`
/// nodes. `prev[subdomain]` is the previous owner in the compacted
/// survivor space, or `u32::MAX` for subdomains orphaned by the loss.
///
/// Partition labels are arbitrary, so after partitioning the labels are
/// matched greedily to the previous owners by overlap — minimising how
/// many subdomains actually migrate (each migration means re-shipping a
/// sub-geometry and replaying its checkpoint on a new host).
pub fn rebalance_on_loss(
    dims: (usize, usize, usize),
    loads: &[f64],
    face_areas: (f64, f64, f64),
    prev: &[u32],
    num_survivors: usize,
) -> RebalancePlan {
    assert_eq!(prev.len(), loads.len());
    assert!(num_survivors >= 1, "rebalance needs at least one survivor");
    let mut mapping = map_subdomains_to_nodes(dims, loads, face_areas, num_survivors);

    // Overlap matrix: how many subdomains land in new part `p` that were
    // previously owned by survivor `s`.
    let mut overlap = vec![vec![0usize; num_survivors]; num_survivors];
    for (sub, &p) in mapping.node_of.iter().enumerate() {
        let s = prev[sub];
        if s != u32::MAX {
            overlap[p as usize][s as usize] += 1;
        }
    }
    // Greedy label matching: repeatedly take the heaviest unassigned
    // (part, survivor) pair. Quadratic in node count — fine at the
    // simulated-cluster scales this repo runs.
    let mut relabel = vec![u32::MAX; num_survivors];
    let mut taken = vec![false; num_survivors];
    for _ in 0..num_survivors {
        let mut best: Option<(usize, usize, usize)> = None;
        for (p, row) in overlap.iter().enumerate() {
            if relabel[p] != u32::MAX {
                continue;
            }
            for (s, &w) in row.iter().enumerate() {
                if taken[s] {
                    continue;
                }
                if best.is_none_or(|(_, _, bw)| w > bw) {
                    best = Some((p, s, w));
                }
            }
        }
        let (p, s, _) = best.expect("square matching always has a free pair");
        relabel[p] = s as u32;
        taken[s] = true;
    }
    for p in mapping.node_of.iter_mut() {
        *p = relabel[*p as usize];
    }
    // node_loads follows the relabelling.
    let mut node_loads = vec![0.0; num_survivors];
    for (sub, &p) in mapping.node_of.iter().enumerate() {
        node_loads[p as usize] += loads[sub];
    }
    mapping.node_loads = node_loads;

    let migrated =
        mapping.node_of.iter().zip(prev).filter(|&(&now, &before)| now != before).count();
    RebalancePlan { mapping, migrated }
}

/// The no-balance baseline: subdomains dealt to nodes in rank order
/// (contiguous blocks), the OpenMOC-style assignment the paper compares
/// against.
pub fn block_baseline(num_subdomains: usize, num_nodes: usize, loads: &[f64]) -> L1Mapping {
    assert_eq!(loads.len(), num_subdomains);
    let per = num_subdomains.div_ceil(num_nodes);
    let node_of: Vec<u32> = (0..num_subdomains).map(|i| (i / per) as u32).collect();
    let mut node_loads = vec![0.0; num_nodes];
    for (i, &n) in node_of.iter().enumerate() {
        node_loads[n as usize] += loads[i];
    }
    L1Mapping { node_of, num_nodes, node_loads, cut: 0.0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::load_uniformity;

    /// C5G7-like load pattern: fine-meshed reflector subdomains are much
    /// heavier than core subdomains (the §5.4 setup).
    fn skewed_loads(nx: usize, ny: usize, nz: usize) -> Vec<f64> {
        let mut v = Vec::new();
        for iz in 0..nz {
            for iy in 0..ny {
                for ix in 0..nx {
                    let reflector = ix + 1 == nx || iy + 1 == ny || iz + 1 == nz;
                    v.push(if reflector { 3.0 } else { 1.0 });
                }
            }
        }
        v
    }

    #[test]
    fn l1_covers_all_subdomains() {
        let loads = skewed_loads(4, 4, 2);
        let m = map_subdomains_to_nodes((4, 4, 2), &loads, (1.0, 1.0, 1.0), 4);
        assert_eq!(m.node_of.len(), 32);
        assert!(m.node_of.iter().all(|&n| (n as usize) < 4));
        assert!((m.node_loads.iter().sum::<f64>() - loads.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn l1_beats_block_baseline_on_skewed_loads() {
        let loads = skewed_loads(4, 4, 4);
        let nodes = 8;
        let l1 = map_subdomains_to_nodes((4, 4, 4), &loads, (1.0, 1.0, 1.0), nodes);
        let base = block_baseline(64, nodes, &loads);
        let u1 = load_uniformity(&l1.node_loads);
        let u0 = load_uniformity(&base.node_loads);
        assert!(u1 <= u0 + 1e-12, "L1 uniformity {u1} vs baseline {u0}");
        assert!(u1 < 1.15, "L1 should be near-balanced, got {u1}");
    }

    #[test]
    fn rebalance_covers_survivors_and_counts_migrations() {
        let loads = skewed_loads(4, 4, 2);
        // Previous owners: the 4-node L1 mapping with node 2 lost. The
        // survivor space is {0, 1, 3} compacted to {0, 1, 2}.
        let before = map_subdomains_to_nodes((4, 4, 2), &loads, (1.0, 1.0, 1.0), 4);
        let prev: Vec<u32> = before
            .node_of
            .iter()
            .map(|&n| match n {
                2 => u32::MAX,
                x if x > 2 => x - 1,
                x => x,
            })
            .collect();
        let orphans = prev.iter().filter(|&&p| p == u32::MAX).count();
        let plan = rebalance_on_loss((4, 4, 2), &loads, (1.0, 1.0, 1.0), &prev, 3);
        assert_eq!(plan.mapping.node_of.len(), 32);
        assert!(plan.mapping.node_of.iter().all(|&n| (n as usize) < 3));
        // Every orphan had to move somewhere; migrations include them.
        assert!(plan.migrated >= orphans, "migrated {} < orphans {orphans}", plan.migrated);
        // Loads are conserved across the surviving nodes.
        let total: f64 = plan.mapping.node_loads.iter().sum();
        assert!((total - loads.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn rebalance_label_matching_limits_churn() {
        // Uniform loads on a line of 8 subdomains over 4 nodes: losing a
        // node forces ~1/4 of the domain to move, but label matching must
        // keep the rest in place (migrations well under "everything").
        let loads = vec![1.0; 8];
        let before = map_subdomains_to_nodes((8, 1, 1), &loads, (1.0, 1.0, 1.0), 4);
        let prev: Vec<u32> = before
            .node_of
            .iter()
            .map(|&n| match n {
                3 => u32::MAX,
                x => x,
            })
            .collect();
        let plan = rebalance_on_loss((8, 1, 1), &loads, (1.0, 1.0, 1.0), &prev, 3);
        assert!(plan.migrated < 8, "label matching failed: all {} subdomains moved", plan.migrated);
    }

    #[test]
    fn l1_keeps_neighbours_together_reasonably() {
        // The cut should be far below the total edge weight (a random
        // assignment cuts ~ (k-1)/k of the edges).
        let loads = skewed_loads(4, 4, 2);
        let m = map_subdomains_to_nodes((4, 4, 2), &loads, (1.0, 1.0, 1.0), 4);
        // Total edge weight of the 4x4x2 grid graph:
        let total_edges = (3 * 4 * 2 + 4 * 3 * 2 + 4 * 4) as f64;
        assert!(m.cut < 0.8 * total_edges, "cut {} of {total_edges}", m.cut);
    }
}
