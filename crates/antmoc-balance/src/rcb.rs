//! Recursive coordinate bisection (RCB): the classic geometric
//! partitioner, provided as an alternative to the graph partitioner for
//! the L1 ablation. RCB splits the weighted sub-geometry grid along its
//! longest axis at the weight median, recursively — cheap, deterministic,
//! and naturally contiguous, but blind to communication volume.

/// Partitions grid cells (indexed `(iz * ny + iy) * nx + ix`) into
/// `parts` groups by recursive coordinate bisection over the cell
/// weights. `parts` may be any positive count (uneven splits divide
/// proportionally).
pub fn rcb_partition(dims: (usize, usize, usize), weights: &[f64], parts: usize) -> Vec<u32> {
    let (nx, ny, nz) = dims;
    assert_eq!(weights.len(), nx * ny * nz);
    assert!(parts >= 1);
    let mut assignment = vec![0u32; weights.len()];
    let cells: Vec<(usize, usize, usize)> =
        (0..nz).flat_map(|z| (0..ny).flat_map(move |y| (0..nx).map(move |x| (x, y, z)))).collect();
    split(&cells, weights, (nx, ny, nz), 0, parts, &mut assignment);
    assignment
}

fn split(
    cells: &[(usize, usize, usize)],
    weights: &[f64],
    dims: (usize, usize, usize),
    first_part: usize,
    parts: usize,
    assignment: &mut [u32],
) {
    let (nx, ny, _) = dims;
    let idx = |c: &(usize, usize, usize)| (c.2 * ny + c.1) * nx + c.0;
    if parts == 1 {
        for c in cells {
            assignment[idx(c)] = first_part as u32;
        }
        return;
    }
    // Longest axis of the cell set's bounding box.
    let bound = |f: fn(&(usize, usize, usize)) -> usize| {
        let lo = cells.iter().map(f).min().unwrap();
        let hi = cells.iter().map(f).max().unwrap();
        hi - lo
    };
    let spans = [bound(|c| c.0), bound(|c| c.1), bound(|c| c.2)];
    let axis = spans.iter().enumerate().max_by_key(|(_, s)| **s).map(|(i, _)| i).unwrap();
    let key = |c: &(usize, usize, usize)| match axis {
        0 => c.0,
        1 => c.1,
        _ => c.2,
    };

    let mut sorted: Vec<&(usize, usize, usize)> = cells.iter().collect();
    sorted.sort_by_key(|c| key(c));

    // Split the parts proportionally and find the weight split point.
    let left_parts = parts / 2;
    let right_parts = parts - left_parts;
    let total: f64 = cells.iter().map(|c| weights[idx(c)]).sum();
    let target = total * left_parts as f64 / parts as f64;
    let mut acc = 0.0;
    let mut cut = 0usize;
    for (i, c) in sorted.iter().enumerate() {
        acc += weights[idx(c)];
        // Keep at least one cell per side when possible.
        if acc >= target && i + 1 < sorted.len() {
            cut = i + 1;
            break;
        }
        cut = i + 1;
    }
    if cut == 0 {
        cut = 1;
    }
    if cut >= sorted.len() {
        cut = sorted.len() - 1;
    }
    let (left, right): (Vec<_>, Vec<_>) =
        (sorted[..cut].iter().map(|c| **c).collect(), sorted[cut..].iter().map(|c| **c).collect());
    split(&left, weights, dims, first_part, left_parts, assignment);
    split(&right, weights, dims, first_part + left_parts, right_parts, assignment);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::load_uniformity;

    fn loads_of(assignment: &[u32], weights: &[f64], parts: usize) -> Vec<f64> {
        let mut loads = vec![0.0; parts];
        for (i, &p) in assignment.iter().enumerate() {
            loads[p as usize] += weights[i];
        }
        loads
    }

    #[test]
    fn uniform_grid_splits_evenly() {
        let dims = (4, 4, 4);
        let w = vec![1.0; 64];
        let a = rcb_partition(dims, &w, 8);
        let loads = loads_of(&a, &w, 8);
        assert!((load_uniformity(&loads) - 1.0).abs() < 1e-9, "{loads:?}");
    }

    #[test]
    fn skewed_grid_stays_reasonably_balanced() {
        let dims = (6, 6, 2);
        let w: Vec<f64> = (0..72).map(|i| if i % 7 == 0 { 5.0 } else { 1.0 }).collect();
        let a = rcb_partition(dims, &w, 6);
        let loads = loads_of(&a, &w, 6);
        assert!(load_uniformity(&loads) < 1.4, "{loads:?}");
    }

    #[test]
    fn every_part_is_nonempty_and_in_range() {
        let dims = (5, 3, 2);
        let w: Vec<f64> = (1..=30).map(|x| x as f64).collect();
        for parts in [1usize, 2, 3, 5, 7] {
            let a = rcb_partition(dims, &w, parts);
            assert!(a.iter().all(|&p| (p as usize) < parts));
            for p in 0..parts as u32 {
                assert!(a.contains(&p), "part {p} empty for {parts} parts");
            }
        }
    }

    #[test]
    fn parts_are_coordinate_contiguous_for_power_of_two() {
        // Each part of an RCB split of a uniform grid is an axis-aligned
        // box; verify by checking that part cells form a contiguous
        // bounding box with no foreign cells inside.
        let dims = (4, 4, 1);
        let w = vec![1.0; 16];
        let a = rcb_partition(dims, &w, 4);
        for p in 0..4u32 {
            let cells: Vec<(usize, usize)> =
                (0..16).filter(|&i| a[i] == p).map(|i| (i % 4, i / 4)).collect();
            let (x0, x1) = (
                cells.iter().map(|c| c.0).min().unwrap(),
                cells.iter().map(|c| c.0).max().unwrap(),
            );
            let (y0, y1) = (
                cells.iter().map(|c| c.1).min().unwrap(),
                cells.iter().map(|c| c.1).max().unwrap(),
            );
            assert_eq!(cells.len(), (x1 - x0 + 1) * (y1 - y0 + 1), "part {p} not a box");
        }
    }
}
