//! L2: fused sub-geometry group → GPU mapping by azimuthal angle
//! (§4.2.2, Fig. 5(2)).
//!
//! A node's sub-geometries are fused; the fused track work is split
//! across the node's GPUs by azimuthal angle. Because complementary
//! angles carry equal track counts and the angle count is a multiple of
//! 4, groups of angles can be dealt to an (even) GPU count evenly — and
//! better still, balanced by per-angle segment load with an LPT bin
//! packer.

/// The L2 product.
#[derive(Debug, Clone)]
pub struct L2Mapping {
    /// `gpu_of[azim_half_index] = gpu`.
    pub gpu_of: Vec<u32>,
    pub num_gpus: usize,
    /// Per-GPU summed load.
    pub gpu_loads: Vec<f64>,
}

/// Maps azimuthal half-set angles to GPUs, balancing the given per-angle
/// loads (e.g. segment counts at each angle) with longest-processing-time
/// first packing. The naive alternative (angles dealt in index order) is
/// available as [`block_angles`] for the no-L2 baseline.
pub fn map_angles_to_gpus(angle_loads: &[f64], num_gpus: usize) -> L2Mapping {
    assert!(num_gpus >= 1);
    assert!(
        angle_loads.len() >= num_gpus,
        "{} angles cannot feed {} GPUs",
        angle_loads.len(),
        num_gpus
    );
    let mut order: Vec<usize> = (0..angle_loads.len()).collect();
    order.sort_by(|&a, &b| angle_loads[b].partial_cmp(&angle_loads[a]).unwrap());
    let mut gpu_of = vec![0u32; angle_loads.len()];
    let mut gpu_loads = vec![0.0f64; num_gpus];
    for &a in &order {
        let (g, _) = gpu_loads
            .iter()
            .enumerate()
            .min_by(|(_, x), (_, y)| x.partial_cmp(y).unwrap())
            .unwrap();
        gpu_of[a] = g as u32;
        gpu_loads[g] += angle_loads[a];
    }
    L2Mapping { gpu_of, num_gpus, gpu_loads }
}

/// The no-L2 baseline: contiguous angle blocks per GPU.
pub fn block_angles(angle_loads: &[f64], num_gpus: usize) -> L2Mapping {
    let per = angle_loads.len().div_ceil(num_gpus);
    let gpu_of: Vec<u32> = (0..angle_loads.len()).map(|i| (i / per) as u32).collect();
    let mut gpu_loads = vec![0.0f64; num_gpus];
    for (a, &g) in gpu_of.iter().enumerate() {
        gpu_loads[g as usize] += angle_loads[a];
    }
    L2Mapping { gpu_of, num_gpus, gpu_loads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::load_uniformity;

    #[test]
    fn uniform_angles_split_perfectly() {
        let loads = vec![5.0; 8];
        let m = map_angles_to_gpus(&loads, 4);
        assert!((load_uniformity(&m.gpu_loads) - 1.0).abs() < 1e-12);
        // Two angles per GPU.
        for g in 0..4u32 {
            assert_eq!(m.gpu_of.iter().filter(|&&x| x == g).count(), 2);
        }
    }

    #[test]
    fn lpt_beats_block_on_skewed_angles() {
        // Steep angles cross more pins: loads vary strongly by angle.
        let loads: Vec<f64> = (0..16).map(|a| 1.0 + (a as f64 / 3.0).sin().abs() * 4.0).collect();
        let lpt = map_angles_to_gpus(&loads, 4);
        let block = block_angles(&loads, 4);
        let u_lpt = load_uniformity(&lpt.gpu_loads);
        let u_block = load_uniformity(&block.gpu_loads);
        assert!(u_lpt <= u_block + 1e-12, "LPT {u_lpt} vs block {u_block}");
        assert!(u_lpt < 1.1, "LPT should be near-balanced: {u_lpt}");
    }

    #[test]
    fn every_gpu_gets_work() {
        let loads: Vec<f64> = (1..=8).map(|x| x as f64).collect();
        let m = map_angles_to_gpus(&loads, 4);
        assert!(m.gpu_loads.iter().all(|&l| l > 0.0));
        let total: f64 = m.gpu_loads.iter().sum();
        assert!((total - 36.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "cannot feed")]
    fn too_few_angles_panics() {
        map_angles_to_gpus(&[1.0, 2.0], 4);
    }
}
