//! The C5G7 3D extension benchmark model (the paper's validation problem,
//! §5 / Fig. 6 / Table 4).
//!
//! Quarter core, 3x3 assemblies of 21.42 cm pitch (17x17 pin cells of
//! 1.26 cm, fuel radius 0.54 cm): two UO2 assemblies on the diagonal, two
//! MOX assemblies off-diagonal, five homogeneous water reflector
//! assemblies. Radial boundary conditions: reflective on the core-centre
//! faces (x-min, y-min), vacuum on the outer faces. Axially the fuel spans
//! 42.84 cm (three 14.28 cm banks for rodded configurations) below a
//! 21.42 cm water reflector; reflective at the midplane (z-min), vacuum on
//! top — a 64.26 cm cube, matching Table 4 of the paper.

use antmoc_xs::{c5g7 as xs7, MaterialId, MaterialLibrary};

use crate::axial::{AxialModel, Zone, ZoneKind};
use crate::csg::{Cell, Fill, Lattice, Universe, UniverseId};
use crate::geometry::{Bc, BoundaryConds, FsrId, Geometry, GeometryBuilder};
use crate::pin::PinBuilder;

/// Pin pitch (cm).
pub const PIN_PITCH: f64 = 1.26;
/// Fuel pin radius (cm).
pub const PIN_RADIUS: f64 = 0.54;
/// Pins per assembly side.
pub const PINS: usize = 17;
/// Assembly pitch (cm).
pub const ASSEMBLY_PITCH: f64 = PIN_PITCH * PINS as f64;
/// Core width (cm): 3 assemblies.
pub const CORE_WIDTH: f64 = 3.0 * ASSEMBLY_PITCH;
/// Height of one axial fuel bank (cm).
pub const BANK_HEIGHT: f64 = 14.28;
/// Total fuel height (cm).
pub const FUEL_HEIGHT: f64 = 3.0 * BANK_HEIGHT;
/// Height of the axial water reflector (cm).
pub const AXIAL_REFLECTOR: f64 = 21.42;
/// Total model height (cm).
pub const CORE_HEIGHT: f64 = FUEL_HEIGHT + AXIAL_REFLECTOR;

/// The guide-tube positions of the 17x17 skeleton, `(row, col)`.
pub const GUIDE_TUBES: [(usize, usize); 24] = [
    (2, 5),
    (2, 8),
    (2, 11),
    (3, 3),
    (3, 13),
    (5, 2),
    (5, 5),
    (5, 8),
    (5, 11),
    (5, 14),
    (8, 2),
    (8, 5),
    (8, 11),
    (8, 14),
    (11, 2),
    (11, 5),
    (11, 8),
    (11, 11),
    (11, 14),
    (13, 3),
    (13, 13),
    (14, 5),
    (14, 8),
    (14, 11),
];

/// Fission chamber position.
pub const FISSION_CHAMBER: (usize, usize) = (8, 8);

/// The MOX enrichment-zone map (A = 4.3 %, B = 7.0 %, C = 8.7 %,
/// G = guide tube, F = fission chamber), row 0 at the bottom of the map.
const MOX_MAP: [&str; 17] = [
    "AAAAAAAAAAAAAAAAA",
    "ABBBBBBBBBBBBBBBA",
    "ABBBBGBBGBBGBBBBA",
    "ABBGBCCCCCCCBGBBA",
    "ABBBCCCCCCCCCBBBA",
    "ABGCCGCCGCCGCCGBA",
    "ABBCCCCCCCCCCCBBA",
    "ABBCCCCCCCCCCCBBA",
    "ABGCCGCCFCCGCCGBA",
    "ABBCCCCCCCCCCCBBA",
    "ABBCCCCCCCCCCCBBA",
    "ABGCCGCCGCCGCCGBA",
    "ABBBCCCCCCCCCBBBA",
    "ABBGBCCCCCCCBGBBA",
    "ABBBBGBBGBBGBBBBA",
    "ABBBBBBBBBBBBBBBA",
    "AAAAAAAAAAAAAAAAA",
];

/// Control-rod insertion pattern of the 3D extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoddedConfig {
    /// No rods in the fuel region.
    #[default]
    Unrodded,
    /// Rods one bank deep into the inner UO2 assembly.
    RoddedA,
    /// Rods two banks into the inner UO2 assembly and one bank into both
    /// MOX assemblies.
    RoddedB,
}

/// Model-resolution options.
#[derive(Debug, Clone, PartialEq)]
pub struct C5g7Options {
    /// Equal-area fuel rings per pin (>= 1).
    pub fuel_rings: usize,
    /// Angular sectors per pin, applied to fuel and moderator alike
    /// (1, 2, or any even count >= 4).
    pub sectors: usize,
    /// Reflector assembly refinement: 0 keeps the assembly homogeneous
    /// (the benchmark definition); `n > 0` meshes it into `n x n` water
    /// cells, the fine-reflector meshing the paper's load-balance study
    /// relies on (§5.4).
    pub reflector_refine: usize,
    /// Target axial cell height (cm).
    pub axial_dz: f64,
    /// Rod insertion pattern.
    pub config: RoddedConfig,
}

impl Default for C5g7Options {
    fn default() -> Self {
        Self {
            fuel_rings: 1,
            sectors: 1,
            reflector_refine: 0,
            axial_dz: BANK_HEIGHT,
            config: RoddedConfig::Unrodded,
        }
    }
}

/// Which kind of assembly occupies a core position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssemblyKind {
    InnerUo2,
    OuterUo2,
    Mox,
    Reflector,
}

/// Quarter-core layout: `(ix, iy)` with the reflective corner at (0, 0).
pub fn assembly_at(ix: usize, iy: usize) -> AssemblyKind {
    match (ix, iy) {
        (0, 0) => AssemblyKind::InnerUo2,
        (1, 1) => AssemblyKind::OuterUo2,
        (1, 0) | (0, 1) => AssemblyKind::Mox,
        _ => AssemblyKind::Reflector,
    }
}

/// A pin's location: assembly indices and pin indices within the assembly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PinAddress {
    pub assembly: (usize, usize),
    pub pin: (usize, usize),
}

/// The constructed model: radial geometry, axial structure, materials.
#[derive(Debug)]
pub struct C5g7 {
    pub geometry: Geometry,
    pub axial: AxialModel,
    pub library: MaterialLibrary,
    pub opts: C5g7Options,
    mat_ids: MatIds,
}

#[derive(Debug, Clone, Copy)]
struct MatIds {
    uo2: MaterialId,
    mox43: MaterialId,
    mox70: MaterialId,
    mox87: MaterialId,
    chamber: MaterialId,
    tube: MaterialId,
    water: MaterialId,
    rod: MaterialId,
    tube_inner_uo2: MaterialId,
    tube_mox: MaterialId,
}

impl C5g7 {
    /// Builds the model with the given options.
    pub fn build(opts: C5g7Options) -> Self {
        let mut library = xs7::library_with_rod();
        // Bank-specific guide-tube aliases so rodded zones can target
        // individual assemblies through the material-map mechanism.
        let mut gt1 = xs7::guide_tube();
        gt1.name = "guide-tube-inner-uo2".into();
        let tube_inner_uo2 = library.add(gt1);
        let mut gt2 = xs7::guide_tube();
        gt2.name = "guide-tube-mox".into();
        let tube_mox = library.add(gt2);

        let m = MatIds {
            uo2: library.by_name("UO2").unwrap().0,
            mox43: library.by_name("MOX-4.3").unwrap().0,
            mox70: library.by_name("MOX-7.0").unwrap().0,
            mox87: library.by_name("MOX-8.7").unwrap().0,
            chamber: library.by_name("fission-chamber").unwrap().0,
            tube: library.by_name("guide-tube").unwrap().0,
            water: library.by_name("moderator").unwrap().0,
            rod: library.by_name("control-rod").unwrap().0,
            tube_inner_uo2,
            tube_mox,
        };

        let mut b = GeometryBuilder::new();

        // Pin universes (shared across assemblies where the bank alias
        // allows).
        let pins = pin_builder(&opts);
        let uo2_pin = pins.build(&mut b, m.uo2, m.water);
        let mox43_pin = pins.build(&mut b, m.mox43, m.water);
        let mox70_pin = pins.build(&mut b, m.mox70, m.water);
        let mox87_pin = pins.build(&mut b, m.mox87, m.water);
        let chamber_pin = pins.build(&mut b, m.chamber, m.water);
        let tube_pin = pins.build(&mut b, m.tube, m.water);
        let tube_pin_inner = pins.build(&mut b, m.tube_inner_uo2, m.water);
        let tube_pin_mox = pins.build(&mut b, m.tube_mox, m.water);

        // Assemblies.
        let inner_uo2 =
            build_uo2_assembly(&mut b, uo2_pin, tube_pin_inner, chamber_pin, "inner-UO2");
        let outer_uo2 = build_uo2_assembly(&mut b, uo2_pin, tube_pin, chamber_pin, "outer-UO2");
        let mox =
            build_mox_assembly(&mut b, mox43_pin, mox70_pin, mox87_pin, tube_pin_mox, chamber_pin);
        let reflector = build_reflector_assembly(&mut b, m.water, opts.reflector_refine);

        // Core lattice: (0,0) is the reflective corner.
        let mut core_unis = Vec::with_capacity(9);
        for iy in 0..3 {
            for ix in 0..3 {
                core_unis.push(match assembly_at(ix, iy) {
                    AssemblyKind::InnerUo2 => inner_uo2,
                    AssemblyKind::OuterUo2 => outer_uo2,
                    AssemblyKind::Mox => mox,
                    AssemblyKind::Reflector => reflector,
                });
            }
        }
        let core = b.add_lattice(Lattice {
            nx: 3,
            ny: 3,
            pitch_x: ASSEMBLY_PITCH,
            pitch_y: ASSEMBLY_PITCH,
            universes: core_unis,
            name: "core".into(),
        });
        let root = b.add_universe(Universe {
            cells: vec![Cell { region: vec![], fill: Fill::Lattice(core) }],
            name: "root".into(),
        });

        let bcs = BoundaryConds {
            x_min: Bc::Reflective,
            x_max: Bc::Vacuum,
            y_min: Bc::Reflective,
            y_max: Bc::Vacuum,
            z_min: Bc::Reflective,
            z_max: Bc::Vacuum,
        };
        let geometry = b.finalize(
            root,
            CORE_WIDTH,
            CORE_WIDTH,
            (CORE_WIDTH / 2.0, CORE_WIDTH / 2.0),
            (0.0, CORE_HEIGHT),
            bcs,
        );

        let axial = build_axial(&opts, &m);
        Self { geometry, axial, library, opts, mat_ids: m }
    }

    /// Builds the benchmark model at default resolution.
    pub fn default_model() -> Self {
        Self::build(C5g7Options::default())
    }

    /// The moderator material id (useful for callers constructing related
    /// geometries).
    pub fn moderator(&self) -> MaterialId {
        self.mat_ids.water
    }

    /// Decodes the pin address of a radial FSR inside a fuel assembly
    /// (`None` for reflector FSRs).
    pub fn pin_of_fsr(&self, f: FsrId) -> Option<PinAddress> {
        let path = self.geometry.fsr_path(f);
        // Path layout: [root cell 0, core ix, core iy, assembly cell 0,
        // pin ix, pin iy, ...leaf]. The reflector assembly is shallower
        // (homogeneous) or made of water cells; detect fuel assemblies by
        // the core position.
        if path.len() < 6 {
            return None;
        }
        let (ax, ay) = (path[1] as usize, path[2] as usize);
        if assembly_at(ax, ay) == AssemblyKind::Reflector {
            return None;
        }
        Some(PinAddress { assembly: (ax, ay), pin: (path[4] as usize, path[5] as usize) })
    }

    /// Whether an FSR's radial material can fission in the fuel zones.
    pub fn is_fuel_fsr(&self, f: FsrId) -> bool {
        self.library.get(self.geometry.fsr_material(f)).is_fissile()
    }
}

/// Builds the axial zones for a rodded configuration.
fn build_axial(opts: &C5g7Options, m: &MatIds) -> AxialModel {
    let rod_map = |banks: &[(MaterialId, MaterialId)]| ZoneKind::Map(banks.to_vec());
    let mut zones = Vec::new();
    let bank = |i: usize| (BANK_HEIGHT * i as f64, BANK_HEIGHT * (i + 1) as f64);
    match opts.config {
        RoddedConfig::Unrodded => {
            zones.push(Zone { z_lo: 0.0, z_hi: FUEL_HEIGHT, kind: ZoneKind::AsIs });
        }
        RoddedConfig::RoddedA => {
            let (z0, _) = bank(0);
            let (_, z1) = bank(1);
            zones.push(Zone { z_lo: z0, z_hi: z1, kind: ZoneKind::AsIs });
            let (z2, z3) = bank(2);
            zones.push(Zone { z_lo: z2, z_hi: z3, kind: rod_map(&[(m.tube_inner_uo2, m.rod)]) });
        }
        RoddedConfig::RoddedB => {
            let (z0, z1) = bank(0);
            zones.push(Zone { z_lo: z0, z_hi: z1, kind: ZoneKind::AsIs });
            let (z2, z3) = bank(1);
            zones.push(Zone { z_lo: z2, z_hi: z3, kind: rod_map(&[(m.tube_inner_uo2, m.rod)]) });
            let (z4, z5) = bank(2);
            zones.push(Zone {
                z_lo: z4,
                z_hi: z5,
                kind: rod_map(&[(m.tube_inner_uo2, m.rod), (m.tube_mox, m.rod)]),
            });
        }
    }
    zones.push(Zone { z_lo: FUEL_HEIGHT, z_hi: CORE_HEIGHT, kind: ZoneKind::AllTo(m.water) });
    AxialModel::new(zones, opts.axial_dz)
}

/// The benchmark's pin parameters at the requested resolution (the shared
/// [`PinBuilder`] does the construction, so the declarative problem
/// format produces byte-identical pins).
fn pin_builder(opts: &C5g7Options) -> PinBuilder {
    let pins = PinBuilder {
        pitch: PIN_PITCH,
        radius: PIN_RADIUS,
        rings: opts.fuel_rings,
        sectors: opts.sectors,
    };
    if let Err(e) = pins.validate() {
        panic!("bad C5G7 resolution options: {e}");
    }
    pins
}

fn build_uo2_assembly(
    b: &mut GeometryBuilder,
    fuel_pin: UniverseId,
    tube_pin: UniverseId,
    chamber_pin: UniverseId,
    name: &str,
) -> UniverseId {
    let mut unis = Vec::with_capacity(PINS * PINS);
    for row in 0..PINS {
        for col in 0..PINS {
            let u = if (row, col) == FISSION_CHAMBER {
                chamber_pin
            } else if GUIDE_TUBES.contains(&(row, col)) {
                tube_pin
            } else {
                fuel_pin
            };
            unis.push(u);
        }
    }
    let lat = b.add_lattice(Lattice {
        nx: PINS,
        ny: PINS,
        pitch_x: PIN_PITCH,
        pitch_y: PIN_PITCH,
        universes: unis,
        name: name.into(),
    });
    b.add_universe(Universe {
        cells: vec![Cell { region: vec![], fill: Fill::Lattice(lat) }],
        name: name.into(),
    })
}

fn build_mox_assembly(
    b: &mut GeometryBuilder,
    mox43_pin: UniverseId,
    mox70_pin: UniverseId,
    mox87_pin: UniverseId,
    tube_pin: UniverseId,
    chamber_pin: UniverseId,
) -> UniverseId {
    let mut unis = Vec::with_capacity(PINS * PINS);
    for row in 0..PINS {
        let line = MOX_MAP[row].as_bytes();
        for col in 0..PINS {
            let u = match line[col] {
                b'A' => mox43_pin,
                b'B' => mox70_pin,
                b'C' => mox87_pin,
                b'G' => tube_pin,
                b'F' => chamber_pin,
                other => panic!("bad MOX map char {}", other as char),
            };
            unis.push(u);
        }
    }
    let lat = b.add_lattice(Lattice {
        nx: PINS,
        ny: PINS,
        pitch_x: PIN_PITCH,
        pitch_y: PIN_PITCH,
        universes: unis,
        name: "MOX".into(),
    });
    b.add_universe(Universe {
        cells: vec![Cell { region: vec![], fill: Fill::Lattice(lat) }],
        name: "MOX".into(),
    })
}

fn build_reflector_assembly(
    b: &mut GeometryBuilder,
    water: MaterialId,
    refine: usize,
) -> UniverseId {
    if refine == 0 {
        let u = b.add_universe(Universe {
            cells: vec![Cell { region: vec![], fill: Fill::Material(water) }],
            name: "reflector".into(),
        });
        b.set_area_hint(u, 0, ASSEMBLY_PITCH * ASSEMBLY_PITCH);
        return u;
    }
    let cell_u = b.add_universe(Universe {
        cells: vec![Cell { region: vec![], fill: Fill::Material(water) }],
        name: "reflector-cell".into(),
    });
    let pitch = ASSEMBLY_PITCH / refine as f64;
    b.set_area_hint(cell_u, 0, pitch * pitch);
    let lat = b.add_lattice(Lattice {
        nx: refine,
        ny: refine,
        pitch_x: pitch,
        pitch_y: pitch,
        universes: vec![cell_u; refine * refine],
        name: "reflector-lattice".into(),
    });
    b.add_universe(Universe {
        cells: vec![Cell { region: vec![], fill: Fill::Lattice(lat) }],
        name: "reflector".into(),
    })
}

/// A single-assembly variant of the benchmark: one UO2 17x17 assembly
/// with reflective radial boundaries (an infinite lattice of assemblies),
/// fuel below an axial water reflector. Far cheaper than the full quarter
/// core — the standard model for quick studies, as in the paper's remark
/// that simulation scale evolved "from single-assembly to full-core".
pub fn single_assembly(opts: C5g7Options) -> C5g7 {
    let mut library = xs7::library_with_rod();
    let mut gt1 = xs7::guide_tube();
    gt1.name = "guide-tube-inner-uo2".into();
    let tube_inner_uo2 = library.add(gt1);
    let mut gt2 = xs7::guide_tube();
    gt2.name = "guide-tube-mox".into();
    let tube_mox = library.add(gt2);

    let m = MatIds {
        uo2: library.by_name("UO2").unwrap().0,
        mox43: library.by_name("MOX-4.3").unwrap().0,
        mox70: library.by_name("MOX-7.0").unwrap().0,
        mox87: library.by_name("MOX-8.7").unwrap().0,
        chamber: library.by_name("fission-chamber").unwrap().0,
        tube: library.by_name("guide-tube").unwrap().0,
        water: library.by_name("moderator").unwrap().0,
        rod: library.by_name("control-rod").unwrap().0,
        tube_inner_uo2,
        tube_mox,
    };
    let _ = (m.mox43, m.mox70, m.mox87, m.tube, m.tube_mox);

    let mut b = GeometryBuilder::new();
    let pins = pin_builder(&opts);
    let uo2_pin = pins.build(&mut b, m.uo2, m.water);
    let chamber_pin = pins.build(&mut b, m.chamber, m.water);
    let tube_pin = pins.build(&mut b, m.tube_inner_uo2, m.water);
    let assembly = build_uo2_assembly(&mut b, uo2_pin, tube_pin, chamber_pin, "UO2-single");
    let root = b.add_universe(Universe {
        cells: vec![Cell { region: vec![], fill: Fill::Universe(assembly) }],
        name: "root".into(),
    });
    let bcs = BoundaryConds {
        x_min: Bc::Reflective,
        x_max: Bc::Reflective,
        y_min: Bc::Reflective,
        y_max: Bc::Reflective,
        z_min: Bc::Reflective,
        z_max: Bc::Vacuum,
    };
    let geometry = b.finalize(
        root,
        ASSEMBLY_PITCH,
        ASSEMBLY_PITCH,
        (ASSEMBLY_PITCH / 2.0, ASSEMBLY_PITCH / 2.0),
        (0.0, CORE_HEIGHT),
        bcs,
    );
    let axial = build_axial(&opts, &m);
    C5g7 { geometry, axial, library, opts, mat_ids: m }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mox_map_is_consistent_with_guide_tubes() {
        for (row, line) in MOX_MAP.iter().enumerate() {
            assert_eq!(line.len(), PINS, "row {row}");
            for (col, ch) in line.bytes().enumerate() {
                let is_gt = GUIDE_TUBES.contains(&(row, col));
                let is_fc = (row, col) == FISSION_CHAMBER;
                match ch {
                    b'G' => assert!(is_gt, "unexpected G at ({row},{col})"),
                    b'F' => assert!(is_fc, "unexpected F at ({row},{col})"),
                    _ => assert!(!is_gt && !is_fc, "missing G/F at ({row},{col})"),
                }
            }
        }
    }

    #[test]
    fn default_model_fsr_count() {
        let m = C5g7::default_model();
        // 4 fuel assemblies x 289 pins x 2 leaves + 5 reflector leaves.
        assert_eq!(m.geometry.num_fsrs(), 4 * 289 * 2 + 5);
    }

    #[test]
    fn sectors_and_rings_multiply_fsrs() {
        let m = C5g7::build(C5g7Options { fuel_rings: 2, sectors: 4, ..Default::default() });
        // Per pin: 2 rings x 4 sectors fuel + 4 moderator sectors = 12.
        assert_eq!(m.geometry.num_fsrs(), 4 * 289 * 12 + 5);
    }

    #[test]
    fn reflector_refinement_adds_water_cells() {
        let m = C5g7::build(C5g7Options { reflector_refine: 17, ..Default::default() });
        assert_eq!(m.geometry.num_fsrs(), 4 * 289 * 2 + 5 * 289);
    }

    #[test]
    fn materials_found_at_expected_points() {
        let m = C5g7::default_model();
        let (uo2, _) = m.library.by_name("UO2").unwrap();
        let (mox87, _) = m.library.by_name("MOX-8.7").unwrap();
        let (water, _) = m.library.by_name("moderator").unwrap();
        let (chamber, _) = m.library.by_name("fission-chamber").unwrap();

        // Centre of the first pin of the inner UO2 assembly.
        let p0 = PIN_PITCH / 2.0;
        assert_eq!(m.geometry.find(p0, p0).unwrap().material, uo2);
        // Fission chamber at the centre of the inner assembly.
        let fc = PIN_PITCH * (FISSION_CHAMBER.0 as f64 + 0.5);
        assert_eq!(m.geometry.find(fc, fc).unwrap().material, chamber);
        // Reflector corner.
        let rx = CORE_WIDTH - 1.0;
        assert_eq!(m.geometry.find(rx, rx).unwrap().material, water);
        // Centre pin of the MOX assembly east of the inner UO2:
        // assembly (1, 0), pin (8, 8) is the chamber; pin (8, 7) is 8.7 %.
        let mx = ASSEMBLY_PITCH + PIN_PITCH * (7.0 + 0.5);
        let my = PIN_PITCH * (8.0 + 0.5);
        assert_eq!(m.geometry.find(mx, my).unwrap().material, mox87);
        // MOX corner pin is 4.3 %.
        let (mox43, _) = m.library.by_name("MOX-4.3").unwrap();
        let cx = ASSEMBLY_PITCH + PIN_PITCH * 0.5;
        let cy = PIN_PITCH * 0.5;
        assert_eq!(m.geometry.find(cx, cy).unwrap().material, mox43);
    }

    #[test]
    fn pin_addresses_decode() {
        let m = C5g7::default_model();
        let p0 = PIN_PITCH / 2.0;
        let loc = m.geometry.find(p0, p0).unwrap();
        let addr = m.pin_of_fsr(loc.fsr).unwrap();
        assert_eq!(addr, PinAddress { assembly: (0, 0), pin: (0, 0) });

        let rx = CORE_WIDTH - 1.0;
        let refl = m.geometry.find(rx, rx).unwrap();
        assert!(m.pin_of_fsr(refl.fsr).is_none());
    }

    #[test]
    fn axial_unrodded_has_fuel_then_reflector() {
        let m = C5g7::default_model();
        assert_eq!(m.axial.z_range(), (0.0, CORE_HEIGHT));
        let (uo2, _) = m.library.by_name("UO2").unwrap();
        let (water, _) = m.library.by_name("moderator").unwrap();
        let fuel_cell = m.axial.find_cell(1.0);
        let refl_cell = m.axial.find_cell(FUEL_HEIGHT + 1.0);
        assert_eq!(m.axial.material_at(uo2, fuel_cell), uo2);
        assert_eq!(m.axial.material_at(uo2, refl_cell), water);
    }

    #[test]
    fn rodded_a_rods_only_inner_uo2_top_bank() {
        let m = C5g7::build(C5g7Options { config: RoddedConfig::RoddedA, ..Default::default() });
        let (rod, _) = m.library.by_name("control-rod").unwrap();
        let (gt_inner, _) = m.library.by_name("guide-tube-inner-uo2").unwrap();
        let (gt_mox, _) = m.library.by_name("guide-tube-mox").unwrap();
        let top_bank = m.axial.find_cell(BANK_HEIGHT * 2.0 + 1.0);
        let bottom = m.axial.find_cell(1.0);
        assert_eq!(m.axial.material_at(gt_inner, top_bank), rod);
        assert_eq!(m.axial.material_at(gt_inner, bottom), gt_inner);
        assert_eq!(m.axial.material_at(gt_mox, top_bank), gt_mox);
    }

    #[test]
    fn rodded_b_rods_mox_top_bank_too() {
        let m = C5g7::build(C5g7Options { config: RoddedConfig::RoddedB, ..Default::default() });
        let (rod, _) = m.library.by_name("control-rod").unwrap();
        let (gt_inner, _) = m.library.by_name("guide-tube-inner-uo2").unwrap();
        let (gt_mox, _) = m.library.by_name("guide-tube-mox").unwrap();
        let mid_bank = m.axial.find_cell(BANK_HEIGHT * 1.0 + 1.0);
        let top_bank = m.axial.find_cell(BANK_HEIGHT * 2.0 + 1.0);
        assert_eq!(m.axial.material_at(gt_inner, mid_bank), rod);
        assert_eq!(m.axial.material_at(gt_mox, mid_bank), gt_mox);
        assert_eq!(m.axial.material_at(gt_mox, top_bank), rod);
    }

    #[test]
    fn single_assembly_builds_and_locates() {
        let m = single_assembly(C5g7Options::default());
        // 289 pins x 2 leaves.
        assert_eq!(m.geometry.num_fsrs(), 289 * 2);
        let (uo2, _) = m.library.by_name("UO2").unwrap();
        let (chamber, _) = m.library.by_name("fission-chamber").unwrap();
        let p0 = PIN_PITCH / 2.0;
        assert_eq!(m.geometry.find(p0, p0).unwrap().material, uo2);
        let fc = PIN_PITCH * (FISSION_CHAMBER.0 as f64 + 0.5);
        assert_eq!(m.geometry.find(fc, fc).unwrap().material, chamber);
        let (w, h) = m.geometry.widths();
        assert!((w - ASSEMBLY_PITCH).abs() < 1e-12 && (h - ASSEMBLY_PITCH).abs() < 1e-12);
    }

    #[test]
    fn single_assembly_pin_decode_uses_assembly_zero() {
        let m = single_assembly(C5g7Options::default());
        let p0 = PIN_PITCH / 2.0;
        let loc = m.geometry.find(p0, p0).unwrap();
        // Path shape differs from the quarter core (no core lattice), so
        // pin_of_fsr does not apply; the path still decodes pin indices.
        let path = m.geometry.fsr_path(loc.fsr);
        assert_eq!(&path[..3], &[0, 0, 0], "path {path:?}");
    }

    #[test]
    fn area_hints_cover_full_core() {
        let m = C5g7::default_model();
        let total: f64 = m.geometry.fsrs().filter_map(|f| m.geometry.fsr_area_hint(f)).sum();
        assert!(
            (total - CORE_WIDTH * CORE_WIDTH).abs() < 1e-6,
            "hinted area {total} vs {}",
            CORE_WIDTH * CORE_WIDTH
        );
    }

    #[test]
    fn trace_across_core_covers_width() {
        let m = C5g7::default_model();
        // Pin row 7 centre line: crosses every fuel circle in the row.
        let segs = m.geometry.trace((0.0, PIN_PITCH * 7.5), 0.0);
        let total: f64 = segs.iter().map(|s| s.1).sum();
        assert!((total - CORE_WIDTH).abs() < 1e-5, "total {total}");
        // A mid-fuel horizontal line must cross many pins.
        assert!(segs.len() > 40, "only {} segments", segs.len());
    }

    #[test]
    fn sectors_trace_is_consistent() {
        let m = C5g7::build(C5g7Options { fuel_rings: 2, sectors: 4, ..Default::default() });
        let segs = m.geometry.trace((0.0, 7.3), 0.1);
        let total: f64 = segs.iter().map(|s| s.1).sum();
        let expect = CORE_WIDTH / 0.1f64.cos();
        assert!((total - expect).abs() < 1e-4, "total {total} vs {expect}");
    }
}
