//! Axial structure of the extruded geometry.
//!
//! The 3D model is the radial geometry swept along z through a stack of
//! *zones*. Each zone can override materials (e.g. the C5G7 3D extension's
//! top reflector replaces everything with moderator; rodded configurations
//! replace guide tubes with control rod). Within zones, a uniform *axial
//! mesh* subdivides space into flat axial cells so that 3D flat source
//! regions are `(radial FSR, axial cell)` pairs.

use antmoc_xs::MaterialId;

use crate::geometry::FsrId;

/// How a zone transforms the radial material of a column.
#[derive(Debug, Clone, PartialEq)]
pub enum ZoneKind {
    /// Materials pass through unchanged (a fuel zone).
    AsIs,
    /// Every material is replaced (e.g. an axial water reflector).
    AllTo(MaterialId),
    /// Selected materials are replaced, pairwise `(from, to)` (e.g. guide
    /// tube -> control rod in a rodded zone).
    Map(Vec<(MaterialId, MaterialId)>),
}

/// One axial zone: `[z_lo, z_hi)` with a material transform.
#[derive(Debug, Clone, PartialEq)]
pub struct Zone {
    pub z_lo: f64,
    pub z_hi: f64,
    pub kind: ZoneKind,
}

/// The axial model: contiguous zones plus a conforming uniform-per-zone
/// mesh of flat axial cells.
#[derive(Debug, Clone)]
pub struct AxialModel {
    zones: Vec<Zone>,
    /// Ascending plane coordinates including both ends;
    /// `planes.len() == num_cells() + 1`. Zone boundaries always appear.
    planes: Vec<f64>,
    /// Axial cell index -> zone index.
    cell_zone: Vec<usize>,
}

impl AxialModel {
    /// Builds the model from contiguous zones and a target axial cell
    /// height; each zone is split into `ceil(zone_height / target)` equal
    /// cells so the mesh conforms to zone boundaries.
    pub fn new(zones: Vec<Zone>, target_dz: f64) -> Self {
        assert!(!zones.is_empty(), "need at least one axial zone");
        assert!(target_dz > 0.0, "target_dz must be positive");
        for w in zones.windows(2) {
            assert!(
                (w[0].z_hi - w[1].z_lo).abs() < 1e-12,
                "zones must be contiguous: {} vs {}",
                w[0].z_hi,
                w[1].z_lo
            );
        }
        let mut planes = vec![zones[0].z_lo];
        let mut cell_zone = Vec::new();
        for (zi, z) in zones.iter().enumerate() {
            let h = z.z_hi - z.z_lo;
            assert!(h > 0.0, "zone {zi} has non-positive height");
            let n = (h / target_dz).ceil().max(1.0) as usize;
            let dz = h / n as f64;
            for k in 1..=n {
                planes.push(z.z_lo + dz * k as f64);
                cell_zone.push(zi);
            }
            // Snap the zone's top plane exactly.
            *planes.last_mut().unwrap() = z.z_hi;
        }
        Self { zones, planes, cell_zone }
    }

    /// A single-zone, pass-through model (pure extrusion).
    pub fn uniform(z_lo: f64, z_hi: f64, target_dz: f64) -> Self {
        Self::new(vec![Zone { z_lo, z_hi, kind: ZoneKind::AsIs }], target_dz)
    }

    /// A window of this model over `[z_lo, z_hi]`: zones clipped to the
    /// range, remeshed with the given target cell height. Used when
    /// cutting spatial-decomposition subdomains axially.
    pub fn restrict(&self, z_lo: f64, z_hi: f64, target_dz: f64) -> Self {
        let (full_lo, full_hi) = self.z_range();
        assert!(z_lo >= full_lo - 1e-9 && z_hi <= full_hi + 1e-9 && z_hi > z_lo);
        let mut zones = Vec::new();
        for z in &self.zones {
            let lo = z.z_lo.max(z_lo);
            let hi = z.z_hi.min(z_hi);
            if hi - lo > 1e-12 {
                zones.push(Zone { z_lo: lo, z_hi: hi, kind: z.kind.clone() });
            }
        }
        assert!(!zones.is_empty(), "window [{z_lo}, {z_hi}] misses every zone");
        Self::new(zones, target_dz)
    }

    /// Total axial extent `(z_min, z_max)`.
    pub fn z_range(&self) -> (f64, f64) {
        (self.planes[0], *self.planes.last().unwrap())
    }

    /// Number of flat axial cells.
    pub fn num_cells(&self) -> usize {
        self.cell_zone.len()
    }

    /// The mesh planes (ascending, including both domain ends).
    pub fn planes(&self) -> &[f64] {
        &self.planes
    }

    /// The zones.
    pub fn zones(&self) -> &[Zone] {
        &self.zones
    }

    /// Height of axial cell `k`.
    pub fn cell_height(&self, k: usize) -> f64 {
        self.planes[k + 1] - self.planes[k]
    }

    /// The axial cell containing `z` (clamped to the valid range; points
    /// exactly on an interior plane belong to the upper cell).
    pub fn find_cell(&self, z: f64) -> usize {
        let n = self.num_cells();
        match self.planes.binary_search_by(|p| p.partial_cmp(&z).unwrap()) {
            Ok(i) => i.min(n - 1),
            Err(i) => i.saturating_sub(1).min(n - 1),
        }
    }

    /// The material seen at axial cell `k` by a column whose radial
    /// material is `radial`.
    pub fn material_at(&self, radial: MaterialId, k: usize) -> MaterialId {
        match &self.zones[self.cell_zone[k]].kind {
            ZoneKind::AsIs => radial,
            ZoneKind::AllTo(m) => *m,
            ZoneKind::Map(map) => {
                map.iter().find(|(from, _)| *from == radial).map(|(_, to)| *to).unwrap_or(radial)
            }
        }
    }
}

/// Index of a 3D flat source region: `(radial FSR, axial cell)` flattened
/// as `axial * num_radial + radial`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fsr3dId(pub u32);

/// Mapping between radial FSRs x axial cells and 3D FSR ids, with the
/// per-3D-FSR material resolved through the axial zones.
#[derive(Debug, Clone)]
pub struct Fsr3dMap {
    num_radial: usize,
    num_axial: usize,
    materials: Vec<MaterialId>,
}

impl Fsr3dMap {
    /// Builds the map from a radial geometry's FSR materials and an axial
    /// model.
    pub fn new(radial_materials: &[MaterialId], axial: &AxialModel) -> Self {
        let num_radial = radial_materials.len();
        let num_axial = axial.num_cells();
        let mut materials = Vec::with_capacity(num_radial * num_axial);
        for k in 0..num_axial {
            for &rm in radial_materials {
                materials.push(axial.material_at(rm, k));
            }
        }
        Self { num_radial, num_axial, materials }
    }

    pub fn num_radial(&self) -> usize {
        self.num_radial
    }

    pub fn num_axial(&self) -> usize {
        self.num_axial
    }

    /// Total number of 3D FSRs.
    pub fn len(&self) -> usize {
        self.materials.len()
    }

    pub fn is_empty(&self) -> bool {
        self.materials.is_empty()
    }

    /// Flattens `(radial, axial)` into a 3D FSR id.
    #[inline]
    pub fn id(&self, radial: FsrId, axial: usize) -> Fsr3dId {
        debug_assert!((radial.0 as usize) < self.num_radial && axial < self.num_axial);
        Fsr3dId((axial * self.num_radial + radial.0 as usize) as u32)
    }

    /// Splits a 3D FSR id back into `(radial, axial)`.
    #[inline]
    pub fn split(&self, id: Fsr3dId) -> (FsrId, usize) {
        let i = id.0 as usize;
        (FsrId((i % self.num_radial) as u32), i / self.num_radial)
    }

    /// The material of a 3D FSR.
    #[inline]
    pub fn material(&self, id: Fsr3dId) -> MaterialId {
        self.materials[id.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FUEL: MaterialId = MaterialId(0);
    const WATER: MaterialId = MaterialId(1);
    const TUBE: MaterialId = MaterialId(2);
    const ROD: MaterialId = MaterialId(3);

    fn model() -> AxialModel {
        AxialModel::new(
            vec![
                Zone { z_lo: 0.0, z_hi: 4.0, kind: ZoneKind::AsIs },
                Zone { z_lo: 4.0, z_hi: 6.0, kind: ZoneKind::Map(vec![(TUBE, ROD)]) },
                Zone { z_lo: 6.0, z_hi: 8.0, kind: ZoneKind::AllTo(WATER) },
            ],
            1.0,
        )
    }

    #[test]
    fn mesh_conforms_to_zone_boundaries() {
        let m = model();
        assert_eq!(m.num_cells(), 8);
        assert!(m.planes().contains(&4.0));
        assert!(m.planes().contains(&6.0));
        assert_eq!(m.z_range(), (0.0, 8.0));
    }

    #[test]
    fn coarse_target_still_splits_zones() {
        let m = AxialModel::new(
            vec![
                Zone { z_lo: 0.0, z_hi: 4.0, kind: ZoneKind::AsIs },
                Zone { z_lo: 4.0, z_hi: 6.0, kind: ZoneKind::AllTo(WATER) },
            ],
            100.0,
        );
        assert_eq!(m.num_cells(), 2);
        assert_eq!(m.cell_height(0), 4.0);
        assert_eq!(m.cell_height(1), 2.0);
    }

    #[test]
    fn find_cell_brackets_planes() {
        let m = model();
        assert_eq!(m.find_cell(0.0), 0);
        assert_eq!(m.find_cell(0.999), 0);
        assert_eq!(m.find_cell(1.0), 1);
        assert_eq!(m.find_cell(7.999), 7);
        assert_eq!(m.find_cell(8.0), 7); // clamped at the top
    }

    #[test]
    fn material_overrides_apply_per_zone() {
        let m = model();
        // Fuel zone: pass-through.
        assert_eq!(m.material_at(FUEL, 0), FUEL);
        assert_eq!(m.material_at(TUBE, 3), TUBE);
        // Rodded zone: only the tube is replaced.
        assert_eq!(m.material_at(TUBE, 4), ROD);
        assert_eq!(m.material_at(FUEL, 5), FUEL);
        // Reflector: everything becomes water.
        assert_eq!(m.material_at(FUEL, 6), WATER);
        assert_eq!(m.material_at(TUBE, 7), WATER);
    }

    #[test]
    fn fsr3d_map_round_trips_and_resolves_materials() {
        let m = model();
        let radial = vec![FUEL, TUBE, WATER];
        let map = Fsr3dMap::new(&radial, &m);
        assert_eq!(map.len(), 24);
        for k in 0..m.num_cells() {
            for r in 0..3u32 {
                let id = map.id(FsrId(r), k);
                assert_eq!(map.split(id), (FsrId(r), k));
            }
        }
        // Rodded zone transforms the tube column only.
        assert_eq!(map.material(map.id(FsrId(1), 4)), ROD);
        assert_eq!(map.material(map.id(FsrId(0), 4)), FUEL);
        // Reflector transforms everything.
        assert_eq!(map.material(map.id(FsrId(0), 7)), WATER);
    }

    #[test]
    #[should_panic(expected = "contiguous")]
    fn rejects_gapped_zones() {
        AxialModel::new(
            vec![
                Zone { z_lo: 0.0, z_hi: 4.0, kind: ZoneKind::AsIs },
                Zone { z_lo: 5.0, z_hi: 6.0, kind: ZoneKind::AsIs },
            ],
            1.0,
        );
    }

    #[test]
    fn restrict_clips_zones_and_keeps_overrides() {
        let m = model();
        let w = m.restrict(3.0, 7.0, 1.0);
        assert_eq!(w.z_range(), (3.0, 7.0));
        assert_eq!(w.zones().len(), 3);
        // Cell containing z=4.5 is in the rodded zone.
        let c = w.find_cell(4.5);
        assert_eq!(w.material_at(TUBE, c), ROD);
        // Cell containing z=6.5 is in the reflector.
        let c = w.find_cell(6.5);
        assert_eq!(w.material_at(FUEL, c), WATER);
    }

    #[test]
    #[should_panic(expected = "misses every zone")]
    fn restrict_rejects_empty_window() {
        // Construct a degenerate request by windowing outside the range;
        // the assert on bounds fires first for truly-outside windows, so
        // use a sliver between machine epsilons.
        let m = model();
        let _ = m.restrict(8.0 - 1e-13, 8.0, 1.0);
    }

    #[test]
    fn uniform_model_is_single_zone() {
        let m = AxialModel::uniform(0.0, 10.0, 2.5);
        assert_eq!(m.num_cells(), 4);
        assert_eq!(m.zones().len(), 1);
        assert_eq!(m.material_at(FUEL, 2), FUEL);
    }
}
