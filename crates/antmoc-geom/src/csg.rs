//! Constructive-solid-geometry building blocks: cells, universes, lattices.
//!
//! The hierarchy mirrors mainstream reactor modelling codes (§2.1 of the
//! paper): a *cell* is an intersection of surface half-spaces filled either
//! with a material or with another *universe*; a *universe* is a set of
//! cells tiling the local plane; a *lattice* is a rectangular array of
//! universes. The root of a [`crate::geometry::Geometry`] is a universe.

use antmoc_xs::MaterialId;

use crate::surface::{Sense, SurfaceId};

/// Index of a universe within a geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UniverseId(pub u32);

/// Index of a lattice within a geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatticeId(pub u32);

/// What fills a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fill {
    /// A homogeneous material; cells with material fills are the leaves
    /// that become flat source regions.
    Material(MaterialId),
    /// Another universe, translated so its origin sits at the cell's
    /// local origin.
    Universe(UniverseId),
    /// A rectangular lattice of universes.
    Lattice(LatticeId),
}

/// A CSG cell: the intersection of half-spaces, with a fill.
#[derive(Debug, Clone)]
pub struct Cell {
    /// `(surface, sense)` pairs; a point is in the cell when it has the
    /// given sense w.r.t. every listed surface. An empty region means
    /// "everywhere in the universe" (useful as a background cell --
    /// put it last, matching is first-wins).
    pub region: Vec<(SurfaceId, Sense)>,
    /// The cell contents.
    pub fill: Fill,
}

/// A set of cells tiling the local plane. Matching is first-wins, so
/// more specific cells must precede background cells.
#[derive(Debug, Clone, Default)]
pub struct Universe {
    /// The cells in priority order.
    pub cells: Vec<Cell>,
    /// Optional human-readable name for debugging / reporting.
    pub name: String,
}

/// A rectangular lattice of `nx * ny` universes, centred on the local
/// origin. Element `(ix, iy)` spans
/// `x in [x_min + ix*px, x_min + (ix+1)*px)` with `x_min = -nx*px/2`,
/// and likewise in y; `iy` increases towards +y. Universes are stored
/// row-major: `universes[iy * nx + ix]`.
#[derive(Debug, Clone)]
pub struct Lattice {
    pub nx: usize,
    pub ny: usize,
    pub pitch_x: f64,
    pub pitch_y: f64,
    pub universes: Vec<UniverseId>,
    pub name: String,
}

impl Lattice {
    /// Width of the lattice in x.
    pub fn width_x(&self) -> f64 {
        self.nx as f64 * self.pitch_x
    }

    /// Width of the lattice in y.
    pub fn width_y(&self) -> f64 {
        self.ny as f64 * self.pitch_y
    }

    /// The `(ix, iy)` cell containing a local point, clamped into range
    /// (points exactly on the outer edge belong to the nearest cell).
    pub fn find_cell(&self, x: f64, y: f64) -> (usize, usize) {
        let fx = (x + 0.5 * self.width_x()) / self.pitch_x;
        let fy = (y + 0.5 * self.width_y()) / self.pitch_y;
        let ix = (fx.floor() as isize).clamp(0, self.nx as isize - 1) as usize;
        let iy = (fy.floor() as isize).clamp(0, self.ny as isize - 1) as usize;
        (ix, iy)
    }

    /// Centre of cell `(ix, iy)` in lattice-local coordinates.
    pub fn cell_center(&self, ix: usize, iy: usize) -> (f64, f64) {
        (
            -0.5 * self.width_x() + (ix as f64 + 0.5) * self.pitch_x,
            -0.5 * self.width_y() + (iy as f64 + 0.5) * self.pitch_y,
        )
    }

    /// The universe in cell `(ix, iy)`.
    pub fn universe_at(&self, ix: usize, iy: usize) -> UniverseId {
        self.universes[iy * self.nx + ix]
    }

    /// Distance from a local point along `(ux, uy)` to the boundary of the
    /// *current* lattice cell (the next interior wall or outer edge).
    pub fn distance_to_cell_wall(&self, x: f64, y: f64, ux: f64, uy: f64) -> f64 {
        let (ix, iy) = self.find_cell(x, y);
        let (cx, cy) = self.cell_center(ix, iy);
        let mut t = f64::INFINITY;
        if ux.abs() > 1e-14 {
            let wall = if ux > 0.0 { cx + 0.5 * self.pitch_x } else { cx - 0.5 * self.pitch_x };
            let cand = (wall - x) / ux;
            if cand > 0.0 {
                t = t.min(cand);
            }
        }
        if uy.abs() > 1e-14 {
            let wall = if uy > 0.0 { cy + 0.5 * self.pitch_y } else { cy - 0.5 * self.pitch_y };
            let cand = (wall - y) / uy;
            if cand > 0.0 {
                t = t.min(cand);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lat() -> Lattice {
        Lattice {
            nx: 3,
            ny: 2,
            pitch_x: 1.0,
            pitch_y: 2.0,
            universes: (0..6).map(UniverseId).collect(),
            name: "t".into(),
        }
    }

    #[test]
    fn lattice_find_cell_covers_plane() {
        let l = lat();
        assert_eq!(l.find_cell(-1.4, -1.9), (0, 0));
        assert_eq!(l.find_cell(1.4, 1.9), (2, 1));
        assert_eq!(l.find_cell(0.0, 0.0), (1, 1)); // on wall: upper cell
                                                   // Clamped outside.
        assert_eq!(l.find_cell(-99.0, 99.0), (0, 1));
    }

    #[test]
    fn lattice_cell_center_round_trips() {
        let l = lat();
        for iy in 0..2 {
            for ix in 0..3 {
                let (cx, cy) = l.cell_center(ix, iy);
                assert_eq!(l.find_cell(cx, cy), (ix, iy));
            }
        }
    }

    #[test]
    fn lattice_wall_distance_is_exact_on_axis() {
        let l = lat();
        let (cx, cy) = l.cell_center(1, 0);
        let t = l.distance_to_cell_wall(cx, cy, 1.0, 0.0);
        assert!((t - 0.5).abs() < 1e-12);
        let t = l.distance_to_cell_wall(cx, cy, 0.0, -1.0);
        assert!((t - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lattice_wall_distance_diagonal() {
        let l = lat();
        let (cx, cy) = l.cell_center(0, 0);
        let inv = 1.0 / 2.0f64.sqrt();
        let t = l.distance_to_cell_wall(cx, cy, inv, inv);
        // Hits the x wall at 0.5/inv ≈ 0.7071 before the y wall at 1/inv.
        assert!((t - 0.5 / inv).abs() < 1e-12);
    }

    #[test]
    fn universe_at_is_row_major() {
        let l = lat();
        assert_eq!(l.universe_at(2, 0), UniverseId(2));
        assert_eq!(l.universe_at(0, 1), UniverseId(3));
    }
}
