//! Radial (x-y plane) surfaces for the extruded CSG geometry.
//!
//! ANT-MOC geometries are *axially extruded*: the radial cross section is
//! described by 2D CSG surfaces and the axial direction by a stack of zones
//! (see [`crate::axial`]). A surface here is therefore a curve in the x-y
//! plane (a line or a circle), which corresponds to an axis-aligned plane or
//! a z-cylinder in 3D.

/// Index of a surface within a [`crate::geometry::Geometry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SurfaceId(pub u32);

/// Which side of a surface a point is on; `Negative` is "inside" for
/// circles (the disk) and the lower half-space for lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    Negative,
    Positive,
}

impl Sense {
    /// The opposite sense.
    pub fn flip(self) -> Self {
        match self {
            Sense::Negative => Sense::Positive,
            Sense::Positive => Sense::Negative,
        }
    }
}

/// A 2D surface: the zero set of a signed function `f(x, y)`.
#[derive(Debug, Clone, PartialEq)]
pub enum Surface {
    /// `x = x0`: `f = x - x0`.
    XPlane { x0: f64 },
    /// `y = y0`: `f = y - y0`.
    YPlane { y0: f64 },
    /// General line `a*x + b*y - c = 0` with `(a, b)` normalised.
    Plane { a: f64, b: f64, c: f64 },
    /// Circle (z-cylinder) centred at `(x0, y0)` with radius `r`:
    /// `f = (x-x0)^2 + (y-y0)^2 - r^2`.
    Circle { x0: f64, y0: f64, r: f64 },
}

/// Tolerance used to decide that a point sits *on* a surface; intersection
/// distances smaller than this are ignored so rays can escape the surface
/// they were just placed on.
pub const SURFACE_EPS: f64 = 1e-10;

impl Surface {
    /// A general line through `(x0, y0)` at angle `phi` (its normal points
    /// to the left of the direction of travel).
    pub fn line_through(x0: f64, y0: f64, phi: f64) -> Self {
        let (s, c) = phi.sin_cos();
        // Direction (c, s); normal (-s, c).
        let a = -s;
        let b = c;
        Surface::Plane { a, b, c: a * x0 + b * y0 }
    }

    /// Signed evaluation: negative inside / below, positive outside / above.
    #[inline]
    pub fn evaluate(&self, x: f64, y: f64) -> f64 {
        match *self {
            Surface::XPlane { x0 } => x - x0,
            Surface::YPlane { y0 } => y - y0,
            Surface::Plane { a, b, c } => a * x + b * y - c,
            Surface::Circle { x0, y0, r } => {
                let dx = x - x0;
                let dy = y - y0;
                dx * dx + dy * dy - r * r
            }
        }
    }

    /// The [`Sense`] of a point relative to this surface.
    #[inline]
    pub fn sense_of(&self, x: f64, y: f64) -> Sense {
        if self.evaluate(x, y) < 0.0 {
            Sense::Negative
        } else {
            Sense::Positive
        }
    }

    /// Smallest distance `t > SURFACE_EPS` at which the ray
    /// `(x, y) + t * (ux, uy)` crosses the surface, if any.
    pub fn distance(&self, x: f64, y: f64, ux: f64, uy: f64) -> Option<f64> {
        match *self {
            Surface::XPlane { x0 } => ray_plane(x0 - x, ux),
            Surface::YPlane { y0 } => ray_plane(y0 - y, uy),
            Surface::Plane { a, b, c } => {
                let denom = a * ux + b * uy;
                if denom.abs() < 1e-14 {
                    return None;
                }
                let t = (c - a * x - b * y) / denom;
                (t > SURFACE_EPS).then_some(t)
            }
            Surface::Circle { x0, y0, r } => {
                // |p + t u - c|^2 = r^2 with |u| = 1.
                let px = x - x0;
                let py = y - y0;
                let b = px * ux + py * uy;
                let c2 = px * px + py * py - r * r;
                let disc = b * b - c2;
                if disc < 0.0 {
                    return None;
                }
                let sq = disc.sqrt();
                let t1 = -b - sq;
                if t1 > SURFACE_EPS {
                    return Some(t1);
                }
                let t2 = -b + sq;
                (t2 > SURFACE_EPS).then_some(t2)
            }
        }
    }
}

#[inline]
fn ray_plane(delta: f64, u: f64) -> Option<f64> {
    if u.abs() < 1e-14 {
        return None;
    }
    let t = delta / u;
    (t > SURFACE_EPS).then_some(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn xplane_senses_and_distance() {
        let s = Surface::XPlane { x0: 1.0 };
        assert_eq!(s.sense_of(0.0, 5.0), Sense::Negative);
        assert_eq!(s.sense_of(2.0, -5.0), Sense::Positive);
        let t = s.distance(0.0, 0.0, 1.0, 0.0).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        assert!(s.distance(0.0, 0.0, -1.0, 0.0).is_none());
        assert!(s.distance(0.0, 0.0, 0.0, 1.0).is_none());
    }

    #[test]
    fn circle_ray_hits_near_side_first() {
        let s = Surface::Circle { x0: 0.0, y0: 0.0, r: 1.0 };
        let t = s.distance(-2.0, 0.0, 1.0, 0.0).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        // From inside: exits at the far side.
        let t = s.distance(0.0, 0.0, 1.0, 0.0).unwrap();
        assert!((t - 1.0).abs() < 1e-12);
        // Miss entirely.
        assert!(s.distance(-2.0, 1.5, 1.0, 0.0).is_none());
    }

    #[test]
    fn circle_tangent_ray() {
        let s = Surface::Circle { x0: 0.0, y0: 0.0, r: 1.0 };
        // Grazing ray at y = 1: tangent point counts as a single root.
        let t = s.distance(-2.0, 1.0, 1.0, 0.0);
        // Either a near-tangent hit at t=2 or a clean miss is acceptable
        // numerically, but never a panic.
        if let Some(t) = t {
            assert!((t - 2.0).abs() < 1e-5);
        }
    }

    #[test]
    fn line_through_respects_direction() {
        let s = Surface::line_through(0.0, 0.0, std::f64::consts::FRAC_PI_4);
        // Point to the left of direction (1,1)/sqrt2 e.g. (-1, 1) => positive.
        assert_eq!(s.sense_of(-1.0, 1.0), Sense::Positive);
        assert_eq!(s.sense_of(1.0, -1.0), Sense::Negative);
        // Points on the line evaluate to ~0.
        assert!(s.evaluate(2.0, 2.0).abs() < 1e-12);
    }

    #[test]
    fn sense_flip_is_involutive() {
        assert_eq!(Sense::Negative.flip(), Sense::Positive);
        assert_eq!(Sense::Positive.flip().flip(), Sense::Positive);
    }

    proptest! {
        #[test]
        fn circle_distance_lands_on_circle(
            px in -3.0f64..3.0, py in -3.0f64..3.0, phi in 0.0f64..6.2
        ) {
            let s = Surface::Circle { x0: 0.5, y0: -0.25, r: 1.0 };
            let (uy, ux) = phi.sin_cos();
            if let Some(t) = s.distance(px, py, ux, uy) {
                let hit = s.evaluate(px + t * ux, py + t * uy);
                prop_assert!(hit.abs() < 1e-7, "residual {hit}");
            }
        }

        #[test]
        fn plane_distance_lands_on_plane(
            px in -3.0f64..3.0, py in -3.0f64..3.0, phi in 0.0f64..6.2,
            lphi in 0.01f64..3.13
        ) {
            let s = Surface::line_through(0.1, 0.2, lphi);
            let (uy, ux) = phi.sin_cos();
            if let Some(t) = s.distance(px, py, ux, uy) {
                prop_assert!(s.evaluate(px + t * ux, py + t * uy).abs() < 1e-8);
            }
        }
    }
}
