//! Reusable pin-cell universe construction.
//!
//! A pin cell is the unit tile of LWR lattice models: a cylindrical fuel
//! (or absorber, or instrument) region centred in a square moderator
//! cell, optionally subdivided into equal-area radial rings and angular
//! sectors for flat-source fidelity. The C5G7 builder and the declarative
//! problem format both construct their pins through [`PinBuilder`], so a
//! lattice described in either way produces byte-identical CSG.

use antmoc_xs::MaterialId;

use crate::csg::{Cell, Fill, Universe, UniverseId};
use crate::geometry::GeometryBuilder;
use crate::surface::{Sense, Surface, SurfaceId};

/// Builds pin-cell universes: `rings` equal-area fuel rings inside
/// `radius`, and `sectors` angular sectors applied to fuel and moderator
/// alike, in a square cell of the given `pitch`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PinBuilder {
    /// Square cell pitch (cm).
    pub pitch: f64,
    /// Outer fuel radius (cm); must fit inside the cell.
    pub radius: f64,
    /// Equal-area fuel rings (>= 1).
    pub rings: usize,
    /// Angular sectors (1, 2, or any even count >= 4).
    pub sectors: usize,
}

impl PinBuilder {
    /// Checks the resolution parameters, returning a human-readable
    /// complaint for invalid combinations.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.pitch > 0.0) {
            return Err(format!("pitch must be > 0, got {}", self.pitch));
        }
        if !(self.radius > 0.0 && self.radius < self.pitch / 2.0) {
            return Err(format!(
                "radius must be in (0, pitch/2) = (0, {}), got {}",
                self.pitch / 2.0,
                self.radius
            ));
        }
        if self.rings < 1 {
            return Err("rings must be >= 1".into());
        }
        if !(self.sectors == 1
            || self.sectors == 2
            || (self.sectors >= 4 && self.sectors.is_multiple_of(2)))
        {
            return Err(format!(
                "sectors must be 1, 2, or an even count >= 4, got {}",
                self.sectors
            ));
        }
        Ok(())
    }

    /// Builds a pin universe filled with `fuel` inside the rings and
    /// `moderator` outside, registering exact area hints for every cell.
    pub fn build(
        &self,
        b: &mut GeometryBuilder,
        fuel: MaterialId,
        moderator: MaterialId,
    ) -> UniverseId {
        if let Err(e) = self.validate() {
            panic!("invalid pin parameters: {e}");
        }
        let ring_radii: Vec<f64> = (1..=self.rings)
            .map(|k| self.radius * ((k as f64) / self.rings as f64).sqrt())
            .collect();
        let circles: Vec<SurfaceId> = ring_radii
            .iter()
            .map(|&r| b.add_surface(Surface::Circle { x0: 0.0, y0: 0.0, r }))
            .collect();

        // Sector lines (angle offset avoids axis alignment).
        let offset = std::f64::consts::PI / 8.0;
        let nlines = if self.sectors >= 2 { self.sectors.max(2) / 2 } else { 0 };
        let delta = 2.0 * std::f64::consts::PI / self.sectors.max(1) as f64;
        let lines: Vec<(SurfaceId, Surface)> = (0..nlines)
            .map(|j| {
                let s = Surface::line_through(0.0, 0.0, offset + delta * j as f64);
                (b.add_surface(s.clone()), s)
            })
            .collect();

        // Sense pairs for sector `s`, determined numerically at the sector
        // midpoint (robust against index arithmetic mistakes).
        let sector_region = |sector: usize| -> Vec<(SurfaceId, Sense)> {
            if self.sectors <= 1 {
                return vec![];
            }
            let mid = offset + delta * (sector as f64 + 0.5);
            let (sy, sx) = mid.sin_cos();
            let probe = (sx * 0.1, sy * 0.1);
            let bounds = [sector, (sector + 1) % self.sectors];
            let mut region: Vec<(SurfaceId, Sense)> = Vec::new();
            for bd in bounds {
                let (sid, surf) = &lines[bd % nlines];
                let sense = surf.sense_of(probe.0, probe.1);
                if let Some(existing) = region.iter().find(|(id, _)| id == sid) {
                    assert_eq!(existing.1, sense, "degenerate sector bounds");
                } else {
                    region.push((*sid, sense));
                }
            }
            region
        };

        let ring_area = std::f64::consts::PI * self.radius * self.radius / self.rings as f64;
        let water_area = self.pitch * self.pitch - std::f64::consts::PI * self.radius * self.radius;
        let nsec = self.sectors.max(1);

        let mut cells = Vec::new();
        let mut areas = Vec::new();
        for ring in 0..self.rings {
            for sector in 0..nsec {
                let mut region = sector_region(sector);
                region.push((circles[ring], Sense::Negative));
                if ring > 0 {
                    region.push((circles[ring - 1], Sense::Positive));
                }
                cells.push(Cell { region, fill: Fill::Material(fuel) });
                areas.push(ring_area / nsec as f64);
            }
        }
        for sector in 0..nsec {
            let mut region = sector_region(sector);
            region.push((circles[self.rings - 1], Sense::Positive));
            cells.push(Cell { region, fill: Fill::Material(moderator) });
            areas.push(water_area / nsec as f64);
        }

        let u = b.add_universe(Universe { cells, name: format!("pin-m{}", fuel.0) });
        for (ci, a) in areas.into_iter().enumerate() {
            b.set_area_hint(u, ci, a);
        }
        u
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{Bc, BoundaryConds};

    const FUEL: MaterialId = MaterialId(0);
    const WATER: MaterialId = MaterialId(1);

    fn finalize_single(b: GeometryBuilder, pin: UniverseId, pitch: f64) -> crate::Geometry {
        let mut b = b;
        let root = b.add_universe(Universe {
            cells: vec![Cell { region: vec![], fill: Fill::Universe(pin) }],
            name: "root".into(),
        });
        let bcs = BoundaryConds {
            x_min: Bc::Reflective,
            x_max: Bc::Reflective,
            y_min: Bc::Reflective,
            y_max: Bc::Reflective,
            z_min: Bc::Reflective,
            z_max: Bc::Reflective,
        };
        b.finalize(root, pitch, pitch, (pitch / 2.0, pitch / 2.0), (0.0, 1.0), bcs)
    }

    #[test]
    fn ring_and_sector_counts_multiply() {
        let mut b = GeometryBuilder::new();
        let pin = PinBuilder { pitch: 1.26, radius: 0.54, rings: 3, sectors: 4 }
            .build(&mut b, FUEL, WATER);
        let g = finalize_single(b, pin, 1.26);
        // 3 rings x 4 sectors fuel + 4 moderator sectors.
        assert_eq!(g.num_fsrs(), 16);
    }

    #[test]
    fn area_hints_cover_the_cell() {
        let mut b = GeometryBuilder::new();
        let pin = PinBuilder { pitch: 1.26, radius: 0.54, rings: 2, sectors: 8 }
            .build(&mut b, FUEL, WATER);
        let g = finalize_single(b, pin, 1.26);
        let total: f64 = g.fsrs().filter_map(|f| g.fsr_area_hint(f)).sum();
        assert!((total - 1.26 * 1.26).abs() < 1e-12, "hinted {total}");
    }

    #[test]
    fn centre_is_fuel_corner_is_moderator() {
        let mut b = GeometryBuilder::new();
        let pin = PinBuilder { pitch: 1.26, radius: 0.54, rings: 1, sectors: 1 }
            .build(&mut b, FUEL, WATER);
        let g = finalize_single(b, pin, 1.26);
        assert_eq!(g.find(0.63, 0.63).unwrap().material, FUEL);
        assert_eq!(g.find(0.05, 0.05).unwrap().material, WATER);
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(PinBuilder { pitch: 1.26, radius: 0.54, rings: 0, sectors: 1 }.validate().is_err());
        assert!(PinBuilder { pitch: 1.26, radius: 0.54, rings: 1, sectors: 3 }.validate().is_err());
        assert!(PinBuilder { pitch: 1.26, radius: 0.7, rings: 1, sectors: 1 }.validate().is_err());
        assert!(PinBuilder { pitch: -1.0, radius: 0.3, rings: 1, sectors: 1 }.validate().is_err());
        assert!(PinBuilder { pitch: 1.26, radius: 0.54, rings: 2, sectors: 6 }.validate().is_ok());
    }
}
