//! Extruded CSG geometry for 3D MOC neutron transport.
//!
//! ANT-MOC models reactors as *axially extruded* geometries (§2.1, §3.2 of
//! the paper): the radial cross section is a hierarchy of CSG cells,
//! universes and rectangular lattices; the axial direction is a stack of
//! zones over a flat axial mesh. A 3D flat source region (FSR) is the pair
//! of a radial FSR and an axial cell.
//!
//! The crate provides:
//!
//! * [`surface`] — 2D surfaces (planes and circles/z-cylinders) with
//!   signed evaluation and ray-distance queries;
//! * [`csg`] — cells, universes and lattices;
//! * [`geometry`] — the assembled arena with point location
//!   ([`geometry::Geometry::find`]), boundary distances and deterministic
//!   FSR enumeration;
//! * [`axial`] — axial zones, the conforming axial mesh and the 3D FSR
//!   map ([`axial::Fsr3dMap`]);
//! * [`c5g7`] — the OECD/NEA C5G7 3D extension benchmark model used for
//!   all the paper's experiments.

pub mod axial;
pub mod c5g7;
pub mod csg;
pub mod geometry;
pub mod pin;
pub mod surface;

pub use axial::{AxialModel, Fsr3dId, Fsr3dMap, Zone, ZoneKind};
pub use csg::{Cell, Fill, Lattice, LatticeId, Universe, UniverseId};
pub use geometry::{Bc, BoundaryConds, Face, FsrId, Geometry, GeometryBuilder, Located};
pub use surface::{Sense, Surface, SurfaceId};
