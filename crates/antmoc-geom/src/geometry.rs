//! The assembled radial geometry: surface/universe/lattice arena, point
//! location, boundary distances, and deterministic FSR enumeration.

use std::collections::HashMap;

use antmoc_xs::MaterialId;

use crate::csg::{Cell, Fill, Lattice, LatticeId, Universe, UniverseId};
use crate::surface::{Surface, SurfaceId, SURFACE_EPS};

/// Identifier of a radial flat source region (a leaf material cell reached
/// through a unique universe/lattice path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FsrId(pub u32);

/// A boundary condition on one face of the domain box.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bc {
    /// Incoming angular flux is zero.
    Vacuum,
    /// Specular reflection.
    Reflective,
    /// Translation to the opposite face.
    Periodic,
}

/// The four radial faces of the domain box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Face {
    XMin,
    XMax,
    YMin,
    YMax,
}

/// Boundary conditions for all six faces of the extruded domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryConds {
    pub x_min: Bc,
    pub x_max: Bc,
    pub y_min: Bc,
    pub y_max: Bc,
    pub z_min: Bc,
    pub z_max: Bc,
}

impl BoundaryConds {
    /// All-reflective box.
    pub fn reflective() -> Self {
        Self {
            x_min: Bc::Reflective,
            x_max: Bc::Reflective,
            y_min: Bc::Reflective,
            y_max: Bc::Reflective,
            z_min: Bc::Reflective,
            z_max: Bc::Reflective,
        }
    }

    /// All-vacuum box.
    pub fn vacuum() -> Self {
        Self {
            x_min: Bc::Vacuum,
            x_max: Bc::Vacuum,
            y_min: Bc::Vacuum,
            y_max: Bc::Vacuum,
            z_min: Bc::Vacuum,
            z_max: Bc::Vacuum,
        }
    }

    /// The condition on a radial face.
    pub fn radial(&self, face: Face) -> Bc {
        match face {
            Face::XMin => self.x_min,
            Face::XMax => self.x_max,
            Face::YMin => self.y_min,
            Face::YMax => self.y_max,
        }
    }
}

/// Result of locating a point: the FSR, its material, and the nesting path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Located {
    pub fsr: FsrId,
    pub material: MaterialId,
    /// Canonical path tokens (cell indices and lattice `(ix, iy)` pairs).
    pub path: Vec<u32>,
}

/// The radial geometry arena plus the domain box and boundary conditions.
///
/// The radial domain is the axis-aligned rectangle
/// `[x_min, x_max] x [y_min, y_max]`; the root universe's local origin sits
/// at the rectangle's centre. The axial extent `[z_min, z_max]` is carried
/// here too (the axial structure itself lives in [`crate::axial`]).
#[derive(Debug, Clone)]
pub struct Geometry {
    surfaces: Vec<Surface>,
    universes: Vec<Universe>,
    lattices: Vec<Lattice>,
    root: UniverseId,
    /// Global coordinates of the root universe's local origin.
    origin: (f64, f64),
    /// Domain box `(x_min, x_max, y_min, y_max)` in global coordinates.
    /// For a full geometry this is centred on `origin`; a window produced
    /// by [`Geometry::restrict`] can sit anywhere inside the model.
    bounds_box: (f64, f64, f64, f64),
    z_range: (f64, f64),
    bcs: BoundaryConds,
    /// Canonical path -> FSR id (filled by `finalize`).
    fsr_by_path: HashMap<Vec<u32>, FsrId>,
    /// FSR id -> material.
    fsr_material: Vec<MaterialId>,
    /// FSR id -> analytic radial area when known (builder-provided hints).
    fsr_area: Vec<Option<f64>>,
    /// FSR id -> path (inverse of `fsr_by_path`).
    fsr_path: Vec<Vec<u32>>,
}

/// Builder-side arena handles. `GeometryBuilder` keeps construction away
/// from the immutable query API of [`Geometry`].
#[derive(Debug, Default)]
pub struct GeometryBuilder {
    surfaces: Vec<Surface>,
    universes: Vec<Universe>,
    lattices: Vec<Lattice>,
    /// Analytic area hints: (universe, cell index) -> radial area.
    area_hints: HashMap<(u32, u32), f64>,
}

impl GeometryBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a surface, returning its id.
    pub fn add_surface(&mut self, s: Surface) -> SurfaceId {
        self.surfaces.push(s);
        SurfaceId(self.surfaces.len() as u32 - 1)
    }

    /// Adds a universe, returning its id.
    pub fn add_universe(&mut self, u: Universe) -> UniverseId {
        self.universes.push(u);
        UniverseId(self.universes.len() as u32 - 1)
    }

    /// Adds a lattice, returning its id.
    pub fn add_lattice(&mut self, l: Lattice) -> LatticeId {
        self.lattices.push(l);
        LatticeId(self.lattices.len() as u32 - 1)
    }

    /// Records the analytic radial area of a leaf cell (used to validate
    /// track-based volume estimation).
    pub fn set_area_hint(&mut self, u: UniverseId, cell_index: usize, area: f64) {
        self.area_hints.insert((u.0, cell_index as u32), area);
    }

    /// Finalises the geometry: enumerates every FSR (leaf material cell
    /// reachable from the root) in deterministic depth-first order.
    ///
    /// `width`/`height` give the radial box size centred at `origin`;
    /// `z_range` the axial extent.
    pub fn finalize(
        self,
        root: UniverseId,
        width: f64,
        height: f64,
        origin: (f64, f64),
        z_range: (f64, f64),
        bcs: BoundaryConds,
    ) -> Geometry {
        assert!(width > 0.0 && height > 0.0 && z_range.1 > z_range.0);
        let mut g = Geometry {
            surfaces: self.surfaces,
            universes: self.universes,
            lattices: self.lattices,
            root,
            origin,
            bounds_box: (
                origin.0 - width / 2.0,
                origin.0 + width / 2.0,
                origin.1 - height / 2.0,
                origin.1 + height / 2.0,
            ),
            z_range,
            bcs,
            fsr_by_path: HashMap::new(),
            fsr_material: Vec::new(),
            fsr_area: Vec::new(),
            fsr_path: Vec::new(),
        };
        let mut path = Vec::new();
        g.enumerate_universe(root, &mut path, &self.area_hints, 1.0);
        g
    }
}

impl Geometry {
    fn enumerate_universe(
        &mut self,
        u: UniverseId,
        path: &mut Vec<u32>,
        hints: &HashMap<(u32, u32), f64>,
        _scale: f64,
    ) {
        for ci in 0..self.universes[u.0 as usize].cells.len() {
            path.push(ci as u32);
            let fill = self.universes[u.0 as usize].cells[ci].fill;
            match fill {
                Fill::Material(m) => {
                    let id = FsrId(self.fsr_material.len() as u32);
                    self.fsr_by_path.insert(path.clone(), id);
                    self.fsr_material.push(m);
                    self.fsr_area.push(hints.get(&(u.0, ci as u32)).copied());
                    self.fsr_path.push(path.clone());
                }
                Fill::Universe(child) => {
                    self.enumerate_universe(child, path, hints, _scale);
                }
                Fill::Lattice(lid) => {
                    let (nx, ny) = {
                        let l = &self.lattices[lid.0 as usize];
                        (l.nx, l.ny)
                    };
                    for iy in 0..ny {
                        for ix in 0..nx {
                            path.push(ix as u32);
                            path.push(iy as u32);
                            let child = self.lattices[lid.0 as usize].universe_at(ix, iy);
                            self.enumerate_universe(child, path, hints, _scale);
                            path.pop();
                            path.pop();
                        }
                    }
                }
            }
            path.pop();
        }
    }

    /// Number of radial FSRs.
    pub fn num_fsrs(&self) -> usize {
        self.fsr_material.len()
    }

    /// The material filling an FSR.
    pub fn fsr_material(&self, f: FsrId) -> MaterialId {
        self.fsr_material[f.0 as usize]
    }

    /// Analytic radial area of an FSR when the builder provided one.
    pub fn fsr_area_hint(&self, f: FsrId) -> Option<f64> {
        self.fsr_area[f.0 as usize]
    }

    /// The canonical path of an FSR.
    pub fn fsr_path(&self, f: FsrId) -> &[u32] {
        &self.fsr_path[f.0 as usize]
    }

    /// Domain boundary conditions.
    pub fn bcs(&self) -> BoundaryConds {
        self.bcs
    }

    /// Overrides the boundary conditions (used when embedding a geometry
    /// as a spatial-decomposition subdomain, where internal faces become
    /// flux-exchange interfaces).
    pub fn set_bcs(&mut self, bcs: BoundaryConds) {
        self.bcs = bcs;
    }

    /// Radial box `(x_min, x_max, y_min, y_max)` in global coordinates.
    pub fn bounds(&self) -> (f64, f64, f64, f64) {
        self.bounds_box
    }

    /// Radial widths `(width_x, width_y)`.
    pub fn widths(&self) -> (f64, f64) {
        (self.bounds_box.1 - self.bounds_box.0, self.bounds_box.3 - self.bounds_box.2)
    }

    /// A window view of this geometry: the same CSG model and FSR
    /// enumeration restricted to the radial box `bounds` and axial range
    /// `z_range`, with the window's own boundary conditions. This is how
    /// spatial-decomposition subdomains are made (§3.2 of the paper):
    /// internal faces typically get `Bc::Vacuum` for tracking, with the
    /// flux exchange handled by the domain-decomposed solver.
    pub fn restrict(
        &self,
        bounds: (f64, f64, f64, f64),
        z_range: (f64, f64),
        bcs: BoundaryConds,
    ) -> Geometry {
        let (x0, x1, y0, y1) = bounds;
        let full = self.bounds_box;
        assert!(
            x0 >= full.0 - 1e-9
                && x1 <= full.1 + 1e-9
                && y0 >= full.2 - 1e-9
                && y1 <= full.3 + 1e-9,
            "window {bounds:?} outside model {full:?}"
        );
        assert!(x1 > x0 && y1 > y0 && z_range.1 > z_range.0);
        let mut g = self.clone();
        g.bounds_box = bounds;
        g.z_range = z_range;
        g.bcs = bcs;
        g
    }

    /// Axial extent `(z_min, z_max)`.
    pub fn z_range(&self) -> (f64, f64) {
        self.z_range
    }

    /// Whether a global point is inside the radial box.
    pub fn contains(&self, x: f64, y: f64) -> bool {
        let (x0, x1, y0, y1) = self.bounds();
        x >= x0 - SURFACE_EPS
            && x <= x1 + SURFACE_EPS
            && y >= y0 - SURFACE_EPS
            && y <= y1 + SURFACE_EPS
    }

    /// Locates the FSR containing a global point. Returns `None` when the
    /// point is outside the domain box or falls through a gap in the CSG
    /// model (which indicates a malformed geometry).
    pub fn find(&self, x: f64, y: f64) -> Option<Located> {
        if !self.contains(x, y) {
            return None;
        }
        let mut lx = x - self.origin.0;
        let mut ly = y - self.origin.1;
        let mut u = self.root;
        let mut path = Vec::with_capacity(8);
        loop {
            let uni = &self.universes[u.0 as usize];
            let ci = self.match_cell(uni, lx, ly)?;
            path.push(ci as u32);
            match uni.cells[ci].fill {
                Fill::Material(m) => {
                    let fsr = *self.fsr_by_path.get(&path)?;
                    return Some(Located { fsr, material: m, path });
                }
                Fill::Universe(child) => {
                    u = child;
                }
                Fill::Lattice(lid) => {
                    let l = &self.lattices[lid.0 as usize];
                    let (ix, iy) = l.find_cell(lx, ly);
                    path.push(ix as u32);
                    path.push(iy as u32);
                    let (cx, cy) = l.cell_center(ix, iy);
                    lx -= cx;
                    ly -= cy;
                    u = l.universe_at(ix, iy);
                }
            }
        }
    }

    fn match_cell(&self, uni: &Universe, lx: f64, ly: f64) -> Option<usize> {
        uni.cells.iter().position(|cell| {
            cell.region
                .iter()
                .all(|&(sid, sense)| self.surfaces[sid.0 as usize].sense_of(lx, ly) == sense)
        })
    }

    /// Distance from a global point along the unit direction `(ux, uy)` to
    /// the next radial cell boundary or domain face, together with the face
    /// when the domain box is what is hit.
    ///
    /// The returned distance is positive; callers advance by it (plus a
    /// small nudge) and re-locate. The implementation descends the universe
    /// hierarchy once, collecting candidate crossings from every surface of
    /// each visited universe, lattice cell walls, and the domain box.
    pub fn distance_to_boundary(&self, x: f64, y: f64, ux: f64, uy: f64) -> (f64, Option<Face>) {
        let (x0, x1, y0, y1) = self.bounds();
        let mut best = f64::INFINITY;
        let mut face = None;
        // Domain box.
        if ux > 1e-14 {
            let t = (x1 - x) / ux;
            if t > SURFACE_EPS && t < best {
                best = t;
                face = Some(Face::XMax);
            }
        } else if ux < -1e-14 {
            let t = (x0 - x) / ux;
            if t > SURFACE_EPS && t < best {
                best = t;
                face = Some(Face::XMin);
            }
        }
        if uy > 1e-14 {
            let t = (y1 - y) / uy;
            if t > SURFACE_EPS && t < best {
                best = t;
                face = Some(Face::YMax);
            }
        } else if uy < -1e-14 {
            let t = (y0 - y) / uy;
            if t > SURFACE_EPS && t < best {
                best = t;
                face = Some(Face::YMin);
            }
        }

        // Hierarchy descent.
        let mut lx = x - self.origin.0;
        let mut ly = y - self.origin.1;
        let mut u = self.root;
        loop {
            let uni = &self.universes[u.0 as usize];
            // Candidate crossings from every surface referenced by this
            // universe's cells (a crossing of any of them can change the
            // region).
            for cell in &uni.cells {
                for &(sid, _) in &cell.region {
                    if let Some(t) = self.surfaces[sid.0 as usize].distance(lx, ly, ux, uy) {
                        if t < best {
                            best = t;
                            face = None;
                        }
                    }
                }
            }
            let Some(ci) = self.match_cell(uni, lx, ly) else {
                break;
            };
            match uni.cells[ci].fill {
                Fill::Material(_) => break,
                Fill::Universe(child) => {
                    u = child;
                }
                Fill::Lattice(lid) => {
                    let l = &self.lattices[lid.0 as usize];
                    let t = l.distance_to_cell_wall(lx, ly, ux, uy);
                    if t > SURFACE_EPS && t < best {
                        best = t;
                        face = None;
                    }
                    let (ix, iy) = l.find_cell(lx, ly);
                    let (cx, cy) = l.cell_center(ix, iy);
                    lx -= cx;
                    ly -= cy;
                    u = l.universe_at(ix, iy);
                }
            }
        }
        (best, face)
    }

    /// Traces a radial ray from `start` along `phi` through the geometry
    /// until it leaves the domain, returning `(fsr, length)` segments.
    /// Mainly a convenience for tests and volume estimation; the production
    /// tracer lives in `antmoc-track`.
    pub fn trace(&self, start: (f64, f64), phi: f64) -> Vec<(FsrId, f64)> {
        let (uy, ux) = phi.sin_cos();
        let mut segs = Vec::new();
        let mut x = start.0;
        let mut y = start.1;
        // Nudge inside.
        let nudge = 1e-9;
        let mut guard = 0;
        loop {
            guard += 1;
            if guard > 1_000_000 {
                panic!("trace did not terminate; geometry may have a gap");
            }
            let Some(loc) = self.find(x + ux * nudge, y + uy * nudge) else {
                break;
            };
            let (t, face) = self.distance_to_boundary(x + ux * nudge, y + uy * nudge, ux, uy);
            if !t.is_finite() {
                break;
            }
            let len = t + nudge;
            segs.push((loc.fsr, len));
            x += ux * len;
            y += uy * len;
            if face.is_some() {
                break;
            }
        }
        segs
    }

    /// Sum of analytic area hints when every FSR has one.
    pub fn total_hinted_area(&self) -> Option<f64> {
        self.fsr_area.iter().copied().sum::<Option<f64>>()
    }

    /// Iterator over all FSR ids.
    pub fn fsrs(&self) -> impl Iterator<Item = FsrId> {
        (0..self.num_fsrs() as u32).map(FsrId)
    }
}

/// Convenience: build a one-cell homogeneous box geometry (used by tests
/// and micro-benchmarks).
pub fn homogeneous_box(
    material: MaterialId,
    width: f64,
    height: f64,
    z_range: (f64, f64),
    bcs: BoundaryConds,
) -> Geometry {
    let mut b = GeometryBuilder::new();
    let u = b.add_universe(Universe {
        cells: vec![Cell { region: vec![], fill: Fill::Material(material) }],
        name: "box".into(),
    });
    b.set_area_hint(u, 0, width * height);
    b.finalize(u, width, height, (0.0, 0.0), z_range, bcs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::surface::Sense;

    fn pin_geometry() -> Geometry {
        // A 2x2 lattice of 1cm pin cells, fuel radius 0.4.
        let mut b = GeometryBuilder::new();
        let fuel = MaterialId(0);
        let water = MaterialId(1);
        let circ = b.add_surface(Surface::Circle { x0: 0.0, y0: 0.0, r: 0.4 });
        let pin = b.add_universe(Universe {
            cells: vec![
                Cell { region: vec![(circ, Sense::Negative)], fill: Fill::Material(fuel) },
                Cell { region: vec![(circ, Sense::Positive)], fill: Fill::Material(water) },
            ],
            name: "pin".into(),
        });
        b.set_area_hint(pin, 0, std::f64::consts::PI * 0.16);
        b.set_area_hint(pin, 1, 1.0 - std::f64::consts::PI * 0.16);
        let lat = b.add_lattice(Lattice {
            nx: 2,
            ny: 2,
            pitch_x: 1.0,
            pitch_y: 1.0,
            universes: vec![pin; 4],
            name: "lat".into(),
        });
        let root = b.add_universe(Universe {
            cells: vec![Cell { region: vec![], fill: Fill::Lattice(lat) }],
            name: "root".into(),
        });
        b.finalize(root, 2.0, 2.0, (0.0, 0.0), (0.0, 1.0), BoundaryConds::reflective())
    }

    #[test]
    fn enumerates_one_fsr_per_leaf() {
        let g = pin_geometry();
        // 4 lattice positions x 2 cells each.
        assert_eq!(g.num_fsrs(), 8);
    }

    #[test]
    fn find_distinguishes_fuel_and_water() {
        let g = pin_geometry();
        // Centre of cell (0,0) is fuel.
        let f = g.find(-0.5, -0.5).unwrap();
        assert_eq!(f.material, MaterialId(0));
        // Corner of the same cell is water.
        let w = g.find(-0.95, -0.95).unwrap();
        assert_eq!(w.material, MaterialId(1));
        assert_ne!(f.fsr, w.fsr);
    }

    #[test]
    fn same_leaf_in_different_lattice_cells_gets_distinct_fsrs() {
        let g = pin_geometry();
        let a = g.find(-0.5, -0.5).unwrap();
        let b = g.find(0.5, 0.5).unwrap();
        assert_eq!(a.material, b.material);
        assert_ne!(a.fsr, b.fsr);
    }

    #[test]
    fn find_outside_returns_none() {
        let g = pin_geometry();
        assert!(g.find(2.5, 0.0).is_none());
    }

    #[test]
    fn distance_to_boundary_hits_circle() {
        let g = pin_geometry();
        // From the centre of pin (0,0) going +x: circle at 0.4.
        let (t, face) = g.distance_to_boundary(-0.5, -0.5, 1.0, 0.0);
        assert!(face.is_none());
        assert!((t - 0.4).abs() < 1e-9, "t = {t}");
    }

    #[test]
    fn distance_to_boundary_reports_domain_face() {
        let g = pin_geometry();
        // From just inside the east edge moving +x, between pins (y on the
        // horizontal wall between cells is fine -- pick mid-pin height).
        let (t, face) = g.distance_to_boundary(0.97, -0.5, 1.0, 0.0);
        assert_eq!(face, Some(Face::XMax));
        assert!((t - 0.03).abs() < 1e-9);
    }

    #[test]
    fn trace_crosses_full_width() {
        let g = pin_geometry();
        let segs = g.trace((-1.0, -0.5), 0.0);
        let total: f64 = segs.iter().map(|s| s.1).sum();
        assert!((total - 2.0).abs() < 1e-6, "total {total}");
        // fuel-water alternation: water, fuel, water, water, fuel, water.
        assert!(segs.len() >= 5);
        let fuel_len: f64 =
            segs.iter().filter(|(f, _)| g.fsr_material(*f) == MaterialId(0)).map(|s| s.1).sum();
        assert!((fuel_len - 1.6).abs() < 1e-6, "fuel length {fuel_len}");
    }

    #[test]
    fn trace_diagonal_has_correct_total_length() {
        let g = pin_geometry();
        let segs = g.trace((-1.0, -1.0), std::f64::consts::FRAC_PI_4);
        let total: f64 = segs.iter().map(|s| s.1).sum();
        assert!((total - 2.0 * 2.0f64.sqrt()).abs() < 1e-6, "total {total}");
    }

    #[test]
    fn homogeneous_box_has_one_fsr() {
        let g = homogeneous_box(MaterialId(0), 3.0, 4.0, (0.0, 2.0), BoundaryConds::vacuum());
        assert_eq!(g.num_fsrs(), 1);
        assert_eq!(g.total_hinted_area(), Some(12.0));
        let segs = g.trace((-1.5, 0.0), 0.0);
        assert_eq!(segs.len(), 1);
        assert!((segs[0].1 - 3.0).abs() < 1e-9);
    }

    #[test]
    fn restrict_window_keeps_model_but_shrinks_box() {
        let g = pin_geometry();
        let w = g.restrict((0.0, 1.0, -1.0, 1.0), (0.0, 0.5), BoundaryConds::vacuum());
        assert_eq!(w.bounds(), (0.0, 1.0, -1.0, 1.0));
        assert_eq!(w.widths(), (1.0, 2.0));
        assert_eq!(w.z_range(), (0.0, 0.5));
        // Same FSR enumeration as the parent.
        assert_eq!(w.num_fsrs(), g.num_fsrs());
        let a = g.find(0.5, 0.5).unwrap();
        let b = w.find(0.5, 0.5).unwrap();
        assert_eq!(a.fsr, b.fsr);
        // Outside the window is outside, even though the model continues.
        assert!(w.find(-0.5, -0.5).is_none());
        assert!(g.find(-0.5, -0.5).is_some());
        // Domain faces move with the window.
        let (t, face) = w.distance_to_boundary(0.97, 0.5, 1.0, 0.0);
        assert_eq!(face, Some(Face::XMax));
        assert!((t - 0.03).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "outside model")]
    fn restrict_rejects_outside_window() {
        let g = pin_geometry();
        let _ = g.restrict((0.0, 3.0, -1.0, 1.0), (0.0, 0.5), BoundaryConds::vacuum());
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn random_rays_cover_their_chords(
            sx in -0.95f64..0.95,
            sy in -0.95f64..0.95,
            phi in 0.02f64..6.26,
        ) {
            // Trace from an interior point; the summed segment length must
            // equal the chord from the point to the domain exit.
            let g = pin_geometry();
            let (uy, ux) = phi.sin_cos();
            let mut chord = f64::INFINITY;
            if ux > 1e-9 { chord = chord.min((1.0 - sx) / ux); }
            if ux < -1e-9 { chord = chord.min((-1.0 - sx) / ux); }
            if uy > 1e-9 { chord = chord.min((1.0 - sy) / uy); }
            if uy < -1e-9 { chord = chord.min((-1.0 - sy) / uy); }
            proptest::prop_assume!(chord.is_finite() && chord > 1e-3);
            let segs = g.trace((sx, sy), phi);
            let total: f64 = segs.iter().map(|s| s.1).sum();
            proptest::prop_assert!(
                (total - chord).abs() < 1e-5 * chord.max(1.0),
                "total {} vs chord {}", total, chord
            );
        }

        #[test]
        fn find_is_deterministic_and_material_consistent(
            x in -0.999f64..0.999,
            y in -0.999f64..0.999,
        ) {
            let g = pin_geometry();
            let a = g.find(x, y);
            let b = g.find(x, y);
            proptest::prop_assert_eq!(a.clone(), b);
            if let Some(loc) = a {
                proptest::prop_assert_eq!(g.fsr_material(loc.fsr), loc.material);
                // Inside-circle points are fuel; far-corner points water.
                let (ix, iy) = ((x + 1.0).floor() as i32, (y + 1.0).floor() as i32);
                let cx = -1.0 + ix as f64 + 0.5;
                let cy = -1.0 + iy as f64 + 0.5;
                let r2 = (x - cx) * (x - cx) + (y - cy) * (y - cy);
                if r2 < 0.4 * 0.4 - 1e-6 {
                    proptest::prop_assert_eq!(loc.material, MaterialId(0));
                } else if r2 > 0.4 * 0.4 + 1e-6 {
                    proptest::prop_assert_eq!(loc.material, MaterialId(1));
                }
            }
        }
    }

    #[test]
    fn area_hints_survive_enumeration() {
        let g = pin_geometry();
        let total: f64 = g.fsrs().filter_map(|f| g.fsr_area_hint(f)).sum();
        assert!((total - 4.0).abs() < 1e-9);
    }
}
