//! Property: the canonical re-emission of a case file is a fixed point.
//! For random valid lattice cases, `parse -> emit -> parse -> emit`
//! yields byte-identical text, and both parses lower to the same
//! geometry. This is what lets tooling rewrite case files (formatting,
//! baseline stamping) without perturbing the problem they describe.

use antmoc_input::{lower, CaseSpec};
use proptest::prelude::*;

/// Builds a random-but-valid case file: one fuel pin and one water
/// cell pin in an `nx x ny` lattice, one or two axial zones.
#[allow(clippy::too_many_arguments)]
fn case_text(
    fuel: &str,
    pitch: f64,
    radius_frac: f64,
    nx: usize,
    ny: usize,
    water_col: usize,
    height: f64,
    dz_frac: f64,
    two_zones: bool,
) -> String {
    let radius = pitch * radius_frac;
    let row: String = (0..nx).map(|ix| if ix == water_col % nx { 'W' } else { 'P' }).collect();
    let rows: Vec<String> = (0..ny).map(|_| format!("  {:?},", row)).collect();
    let zones = if two_zones {
        format!(
            "[[zone]]\nfrom = 0.0\nto = {:?}\n\n[[zone]]\nfrom = {:?}\nto = {:?}\nall_to = \"moderator\"\n",
            height / 2.0,
            height / 2.0,
            height
        )
    } else {
        format!("[[zone]]\nfrom = 0.0\nto = {height:?}\n")
    };
    format!(
        r#"[case]
name = "prop-case"
kind = "eigenvalue"

[materials]
library = "c5g7"

[[pin]]
name = "p"
fuel = {fuel:?}
moderator = "moderator"
pitch = {pitch:?}
radius = {radius:?}

[[pin]]
name = "w"
fill = "moderator"

[[lattice]]
name = "lat"
pitch = [{pitch:?}, {pitch:?}]
key = {{ P = "p", W = "w" }}
rows = [
{rows}
]

[core]
root = "lat"

{zones}
[axial]
dz = {dz:?}

[tracks]
num_azim = 4

[solver]
backend = "cpu-serial"
tolerance = 1e-4
"#,
        rows = rows.join("\n"),
        dz = height * dz_frac,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn emit_is_a_fixed_point_and_lowering_agrees(
        fuel_pick in 0usize..3,
        pitch in 0.6f64..2.0,
        radius_frac in 0.2f64..0.45,
        dims in 0usize..16,
        water_col in 0usize..5,
        height in 1.0f64..5.0,
        dz_frac in 0.3f64..1.0,
        zone_pick in 0usize..2,
    ) {
        let (nx, ny) = (dims % 4 + 1, dims / 4 + 1);
        let two_zones = zone_pick == 1;
        let fuel = ["UO2", "MOX-4.3", "fission-chamber"][fuel_pick];
        let text = case_text(
            fuel, pitch, radius_frac, nx, ny, water_col, height, dz_frac, two_zones,
        );
        let spec1 = CaseSpec::parse(&text).unwrap();
        let emitted1 = spec1.emit();
        let spec2 = CaseSpec::parse(&emitted1)
            .unwrap_or_else(|e| panic!("re-parse of emitted text failed: {e}\n{emitted1}"));
        let emitted2 = spec2.emit();
        prop_assert_eq!(&emitted1, &emitted2, "emit is not a fixed point");

        let low1 = lower(&spec1).unwrap();
        let low2 = lower(&spec2).unwrap();
        prop_assert_eq!(low1.geometry.num_fsrs(), low2.geometry.num_fsrs());
        prop_assert_eq!(low1.axial.num_cells(), low2.axial.num_cells());
        for f in low1.geometry.fsrs() {
            prop_assert_eq!(
                low1.geometry.fsr_material(f),
                low2.geometry.fsr_material(f)
            );
        }
    }
}
