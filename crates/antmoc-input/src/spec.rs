//! The declarative case description: a validated, typed view of a case
//! file, plus a canonical re-emitter.
//!
//! [`CaseSpec::parse`] turns TOML text into a spec, rejecting unknown
//! sections and malformed keys with the source line attached.
//! [`CaseSpec::emit`] renders the spec back to canonical TOML; emitting,
//! parsing, and emitting again is stable, which the round-trip property
//! test pins down. Solver/tracking sections ([solver], [tracks],
//! [decomposition], [fault], [telemetry]) are *not* interpreted here —
//! they pass through as raw key/value pairs for the pipeline's existing
//! config interpreter, so the case format never lags behind new solver
//! options.

use antmoc_geom::{Bc, BoundaryConds};

use crate::toml::{Doc, Item, Table, TomlError, Value};

/// A case-file failure with line and key context.
#[derive(Debug, Clone, PartialEq)]
pub struct InputError {
    pub line: usize,
    pub context: String,
    pub message: String,
}

impl InputError {
    pub fn new(line: usize, context: impl Into<String>, message: impl Into<String>) -> Self {
        Self { line, context: context.into(), message: message.into() }
    }
}

impl std::fmt::Display for InputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "case file line {} ({}): {}", self.line, self.context, self.message)
    }
}

impl std::error::Error for InputError {}

impl From<TomlError> for InputError {
    fn from(e: TomlError) -> Self {
        InputError { line: e.line, context: "toml".into(), message: e.message }
    }
}

/// What the solver should compute for this case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseKind {
    /// A k-eigenvalue power iteration.
    Eigenvalue,
    /// A fixed-source solve driven by `[[source]]` entries.
    FixedSource,
}

/// A raw `key = value` passed through to the pipeline config interpreter.
#[derive(Debug, Clone, PartialEq)]
pub struct RawEntry {
    pub line: usize,
    /// The scalar text as an INI-style consumer would see it.
    pub value: String,
    /// Whether the author quoted the value (preserved for re-emission).
    pub quoted: bool,
}

/// One pin declaration (`[[pin]]`).
#[derive(Debug, Clone, PartialEq)]
pub struct PinSpec {
    pub name: String,
    pub line: usize,
    pub kind: PinKind,
}

#[derive(Debug, Clone, PartialEq)]
pub enum PinKind {
    /// A ringed/sectored fuel cylinder in a square moderator cell.
    Fuel { fuel: String, moderator: String, pitch: f64, radius: f64, rings: usize, sectors: usize },
    /// A homogeneous cell filled with one material.
    Cell { fill: String },
}

/// One lattice declaration (`[[lattice]]`). `rows` are listed
/// top-to-bottom as drawn; lowering flips them into +y order.
#[derive(Debug, Clone, PartialEq)]
pub struct LatticeSpec {
    pub name: String,
    pub line: usize,
    pub pitch: (f64, f64),
    /// Single-character symbols mapping to pin or lattice names.
    pub key: Vec<(char, String)>,
    pub rows: Vec<String>,
}

/// The `[core]` section: what fills the domain and its boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreSpec {
    pub line: usize,
    /// Name of the root lattice (or pin, for a single-cell domain).
    pub root: String,
    /// Explicit domain width/height; defaults to the root lattice extent.
    pub width: Option<(f64, f64)>,
    pub boundary: BoundaryConds,
}

/// One axial zone (`[[zone]]`), bottom to top.
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneSpec {
    pub line: usize,
    pub from: f64,
    pub to: f64,
    pub kind: ZoneKindSpec,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ZoneKindSpec {
    /// Radial materials apply unchanged.
    AsIs,
    /// The whole zone becomes one material (e.g. an axial reflector).
    AllTo(String),
    /// Selected materials are substituted (e.g. rod insertion).
    Map(Vec<(String, String)>),
}

/// One fixed source (`[[source]]`): an isotropic emission density in
/// every FSR of the named material.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceSpec {
    pub line: usize,
    pub material: String,
    /// 1-based energy groups receiving the source.
    pub groups: Vec<usize>,
    pub strength: f64,
}

/// The physics acceptance gates (`[gates]`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GateSpec {
    /// Acceptance band for k_eff (eigenvalue cases).
    pub keff: Option<(f64, f64)>,
    /// Flux-attenuation check (fixed-source cases).
    pub flux_ratio: Option<FluxRatioGate>,
}

/// Requires `mean flux(from, group) / mean flux(to, group)` to land in
/// `[min, max]` — the attenuation across a shield.
#[derive(Debug, Clone, PartialEq)]
pub struct FluxRatioGate {
    pub from: String,
    pub to: String,
    /// 1-based energy group.
    pub group: usize,
    pub min: f64,
    pub max: f64,
}

/// The geometry half of a case: materials, pins, lattices, core, axial.
#[derive(Debug, Clone, PartialEq)]
pub struct GeometrySpec {
    /// Base material library name (`[materials] library`).
    pub library: String,
    /// `(new name, existing name)` clones added to the library, in order.
    pub aliases: Vec<(String, String)>,
    pub pins: Vec<PinSpec>,
    pub lattices: Vec<LatticeSpec>,
    pub core: CoreSpec,
    pub zones: Vec<ZoneSpec>,
    /// Target axial cell height (`[axial] dz`).
    pub axial_dz: f64,
}

/// A fully parsed case file.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseSpec {
    pub name: String,
    pub kind: CaseKind,
    pub geometry: GeometrySpec,
    pub sources: Vec<SourceSpec>,
    pub gates: GateSpec,
    /// Pass-through sections for the pipeline config interpreter, in file
    /// order: `(section name, entries)`.
    pub raw: Vec<(String, Vec<(String, RawEntry)>)>,
}

const PASSTHROUGH: [&str; 5] = ["tracks", "solver", "decomposition", "fault", "telemetry"];
const KNOWN_TABLES: [&str; 5] = ["case", "materials", "core", "axial", "gates"];
const KNOWN_ARRAYS: [&str; 4] = ["pin", "lattice", "zone", "source"];

fn ctx(section: &str, key: &str) -> String {
    format!("{section} {key}")
}

fn req<'a>(t: &'a Table, section: &str, key: &str) -> Result<&'a Item, InputError> {
    t.get(key).ok_or_else(|| InputError::new(t.line, ctx(section, key), "required key is missing"))
}

fn str_of(item: &Item, section: &str, key: &str) -> Result<String, InputError> {
    item.value.as_str().map(str::to_owned).ok_or_else(|| {
        InputError::new(
            item.line,
            ctx(section, key),
            format!("expected a string, found {}", item.value.type_name()),
        )
    })
}

fn f64_of(item: &Item, section: &str, key: &str) -> Result<f64, InputError> {
    item.value.as_f64().ok_or_else(|| {
        InputError::new(
            item.line,
            ctx(section, key),
            format!("expected a number, found {}", item.value.type_name()),
        )
    })
}

fn usize_of(item: &Item, section: &str, key: &str) -> Result<usize, InputError> {
    item.value.as_usize().ok_or_else(|| {
        InputError::new(
            item.line,
            ctx(section, key),
            format!("expected a non-negative integer, found {}", item.value.type_name()),
        )
    })
}

fn req_str(t: &Table, section: &str, key: &str) -> Result<String, InputError> {
    str_of(req(t, section, key)?, section, key)
}

fn req_f64(t: &Table, section: &str, key: &str) -> Result<f64, InputError> {
    f64_of(req(t, section, key)?, section, key)
}

fn f64_pair(item: &Item, section: &str, key: &str) -> Result<(f64, f64), InputError> {
    let bad = || {
        InputError::new(
            item.line,
            ctx(section, key),
            "expected an array of two numbers, e.g. [1.26, 1.26]",
        )
    };
    let arr = item.value.as_arr().ok_or_else(bad)?;
    if arr.len() != 2 {
        return Err(bad());
    }
    Ok((arr[0].as_f64().ok_or_else(bad)?, arr[1].as_f64().ok_or_else(bad)?))
}

fn reject_unknown_keys(t: &Table, section: &str, known: &[&str]) -> Result<(), InputError> {
    for (k, item) in t.entries() {
        if !known.contains(&k.as_str()) {
            return Err(InputError::new(
                item.line,
                ctx(section, k),
                format!("unknown key; expected one of: {}", known.join(", ")),
            ));
        }
    }
    Ok(())
}

fn parse_bc(s: &str, line: usize, context: String) -> Result<Bc, InputError> {
    match s {
        "vacuum" => Ok(Bc::Vacuum),
        "reflective" => Ok(Bc::Reflective),
        "periodic" => Ok(Bc::Periodic),
        other => Err(InputError::new(
            line,
            context,
            format!(
                "unknown boundary condition {other:?}; expected vacuum, reflective, or periodic"
            ),
        )),
    }
}

fn bc_name(bc: Bc) -> &'static str {
    match bc {
        Bc::Vacuum => "vacuum",
        Bc::Reflective => "reflective",
        Bc::Periodic => "periodic",
    }
}

impl CaseSpec {
    /// Parses and validates a case file.
    pub fn parse(text: &str) -> Result<Self, InputError> {
        let doc = Doc::parse(text)?;

        for (name, table) in doc.tables() {
            if !KNOWN_TABLES.contains(&name) && !PASSTHROUGH.contains(&name) {
                return Err(InputError::new(
                    table.line,
                    format!("[{name}]"),
                    "unknown section; geometry sections are [case], [materials], [core], \
                     [axial], [gates] plus [[pin]]/[[lattice]]/[[zone]]/[[source]]; solver \
                     sections [tracks], [solver], [decomposition], [fault], [telemetry] pass \
                     through",
                ));
            }
        }
        for (name, tables) in doc.arrays() {
            if !KNOWN_ARRAYS.contains(&name) {
                return Err(InputError::new(
                    tables[0].line,
                    format!("[[{name}]]"),
                    "unknown array section; expected [[pin]], [[lattice]], [[zone]], or \
                     [[source]]",
                ));
            }
        }

        // [case]
        let case = doc
            .table("case")
            .ok_or_else(|| InputError::new(1, "[case]", "the [case] section is required"))?;
        reject_unknown_keys(case, "[case]", &["name", "kind"])?;
        let name = req_str(case, "[case]", "name")?;
        let kind = match case.get("kind") {
            None => CaseKind::Eigenvalue,
            Some(item) => match str_of(item, "[case]", "kind")?.as_str() {
                "eigenvalue" => CaseKind::Eigenvalue,
                "fixed-source" => CaseKind::FixedSource,
                other => {
                    return Err(InputError::new(
                        item.line,
                        ctx("[case]", "kind"),
                        format!("unknown kind {other:?}; expected eigenvalue or fixed-source"),
                    ))
                }
            },
        };

        // [materials]
        let materials = doc.table("materials").ok_or_else(|| {
            InputError::new(1, "[materials]", "the [materials] section is required")
        })?;
        reject_unknown_keys(materials, "[materials]", &["library", "aliases"])?;
        let library = req_str(materials, "[materials]", "library")?;
        let mut aliases = Vec::new();
        if let Some(item) = materials.get("aliases") {
            let bad = || {
                InputError::new(
                    item.line,
                    ctx("[materials]", "aliases"),
                    "expected an array of [\"new-name\", \"existing-name\"] pairs",
                )
            };
            for pair in item.value.as_arr().ok_or_else(bad)? {
                let pair = pair.as_arr().ok_or_else(bad)?;
                if pair.len() != 2 {
                    return Err(bad());
                }
                let new = pair[0].as_str().ok_or_else(bad)?;
                let old = pair[1].as_str().ok_or_else(bad)?;
                aliases.push((new.to_owned(), old.to_owned()));
            }
        }

        // [[pin]]
        let mut pins = Vec::new();
        for t in doc.array("pin") {
            let pin_name = req_str(t, "[[pin]]", "name")?;
            let section = format!("[[pin]] {pin_name:?}");
            let kind = if let Some(fill) = t.get("fill") {
                reject_unknown_keys(t, &section, &["name", "fill"])?;
                PinKind::Cell { fill: str_of(fill, &section, "fill")? }
            } else {
                reject_unknown_keys(
                    t,
                    &section,
                    &["name", "fuel", "moderator", "pitch", "radius", "rings", "sectors"],
                )?;
                PinKind::Fuel {
                    fuel: req_str(t, &section, "fuel")?,
                    moderator: req_str(t, &section, "moderator")?,
                    pitch: req_f64(t, &section, "pitch")?,
                    radius: req_f64(t, &section, "radius")?,
                    rings: match t.get("rings") {
                        None => 1,
                        Some(i) => usize_of(i, &section, "rings")?,
                    },
                    sectors: match t.get("sectors") {
                        None => 1,
                        Some(i) => usize_of(i, &section, "sectors")?,
                    },
                }
            };
            if pins.iter().any(|p: &PinSpec| p.name == pin_name) {
                return Err(InputError::new(
                    t.line,
                    section,
                    "a pin with this name was already declared",
                ));
            }
            pins.push(PinSpec { name: pin_name, line: t.line, kind });
        }

        // [[lattice]]
        let mut lattices: Vec<LatticeSpec> = Vec::new();
        for t in doc.array("lattice") {
            let lat_name = req_str(t, "[[lattice]]", "name")?;
            let section = format!("[[lattice]] {lat_name:?}");
            reject_unknown_keys(t, &section, &["name", "pitch", "key", "rows"])?;
            let pitch = f64_pair(req(t, &section, "pitch")?, &section, "pitch")?;

            let key_item = req(t, &section, "key")?;
            let key_tab = key_item.value.as_table().ok_or_else(|| {
                InputError::new(
                    key_item.line,
                    ctx(&section, "key"),
                    "expected an inline table mapping symbols to names, e.g. { U = \"uo2\" }",
                )
            })?;
            let mut key = Vec::new();
            for (sym, v) in key_tab {
                let mut chars = sym.chars();
                let (c, rest) = (chars.next(), chars.next());
                if c.is_none() || rest.is_some() {
                    return Err(InputError::new(
                        key_item.line,
                        ctx(&section, "key"),
                        format!("symbol {sym:?} must be a single character"),
                    ));
                }
                let target = v.as_str().ok_or_else(|| {
                    InputError::new(
                        key_item.line,
                        ctx(&section, "key"),
                        format!("symbol {sym:?} must map to a pin or lattice name string"),
                    )
                })?;
                key.push((c.unwrap(), target.to_owned()));
            }

            let rows_item = req(t, &section, "rows")?;
            let rows_arr = rows_item.value.as_arr().ok_or_else(|| {
                InputError::new(
                    rows_item.line,
                    ctx(&section, "rows"),
                    "expected an array of row strings",
                )
            })?;
            let mut rows = Vec::new();
            for r in rows_arr {
                let s = r.as_str().ok_or_else(|| {
                    InputError::new(
                        rows_item.line,
                        ctx(&section, "rows"),
                        "rows must be strings of key symbols",
                    )
                })?;
                rows.push(s.to_owned());
            }
            if rows.is_empty() || rows[0].is_empty() {
                return Err(InputError::new(
                    rows_item.line,
                    ctx(&section, "rows"),
                    "a lattice needs at least one non-empty row",
                ));
            }
            let nx = rows[0].chars().count();
            for (i, r) in rows.iter().enumerate() {
                if r.chars().count() != nx {
                    return Err(InputError::new(
                        rows_item.line,
                        ctx(&section, "rows"),
                        format!(
                            "lattice rows must be rectangular: row {} has {} symbols, row 0 \
                             has {nx}",
                            i,
                            r.chars().count()
                        ),
                    ));
                }
            }
            for r in &rows {
                for c in r.chars() {
                    if !key.iter().any(|(k, _)| *k == c) {
                        return Err(InputError::new(
                            rows_item.line,
                            ctx(&section, "rows"),
                            format!("row symbol {c:?} is not in the key"),
                        ));
                    }
                }
            }
            if lattices.iter().any(|l| l.name == lat_name)
                || pins.iter().any(|p| p.name == lat_name)
            {
                return Err(InputError::new(
                    t.line,
                    section,
                    "this name is already taken by another pin or lattice",
                ));
            }
            lattices.push(LatticeSpec { name: lat_name, line: t.line, pitch, key, rows });
        }

        // [core]
        let core_t = doc
            .table("core")
            .ok_or_else(|| InputError::new(1, "[core]", "the [core] section is required"))?;
        reject_unknown_keys(core_t, "[core]", &["root", "width", "boundary"])?;
        let root = req_str(core_t, "[core]", "root")?;
        let width = match core_t.get("width") {
            None => None,
            Some(item) => Some(f64_pair(item, "[core]", "width")?),
        };
        let mut boundary = BoundaryConds::reflective();
        if let Some(item) = core_t.get("boundary") {
            let tab = item.value.as_table().ok_or_else(|| {
                InputError::new(
                    item.line,
                    ctx("[core]", "boundary"),
                    "expected an inline table, e.g. { x_min = \"reflective\", x_max = \"vacuum\" }",
                )
            })?;
            for (face, v) in tab {
                let s = v.as_str().ok_or_else(|| {
                    InputError::new(
                        item.line,
                        ctx("[core]", "boundary"),
                        format!("face {face} must be a string"),
                    )
                })?;
                let bc = parse_bc(s, item.line, ctx("[core]", "boundary"))?;
                match face.as_str() {
                    "x_min" => boundary.x_min = bc,
                    "x_max" => boundary.x_max = bc,
                    "y_min" => boundary.y_min = bc,
                    "y_max" => boundary.y_max = bc,
                    "z_min" => boundary.z_min = bc,
                    "z_max" => boundary.z_max = bc,
                    other => {
                        return Err(InputError::new(
                            item.line,
                            ctx("[core]", "boundary"),
                            format!(
                                "unknown face {other:?}; expected x_min, x_max, y_min, y_max, \
                                 z_min, z_max"
                            ),
                        ))
                    }
                }
            }
        }
        let core = CoreSpec { line: core_t.line, root, width, boundary };

        // [[zone]]
        let mut zones = Vec::new();
        for t in doc.array("zone") {
            let section = format!("[[zone]] #{}", zones.len() + 1);
            reject_unknown_keys(t, &section, &["from", "to", "all_to", "map"])?;
            let from = req_f64(t, &section, "from")?;
            let to = req_f64(t, &section, "to")?;
            let kind = match (t.get("all_to"), t.get("map")) {
                (Some(_), Some(m)) => {
                    return Err(InputError::new(
                        m.line,
                        ctx(&section, "map"),
                        "a zone may have all_to or map, not both",
                    ))
                }
                (Some(a), None) => ZoneKindSpec::AllTo(str_of(a, &section, "all_to")?),
                (None, Some(m)) => {
                    let bad = || {
                        InputError::new(
                            m.line,
                            ctx(&section, "map"),
                            "expected an array of [\"from-material\", \"to-material\"] pairs",
                        )
                    };
                    let mut map = Vec::new();
                    for pair in m.value.as_arr().ok_or_else(bad)? {
                        let pair = pair.as_arr().ok_or_else(bad)?;
                        if pair.len() != 2 {
                            return Err(bad());
                        }
                        map.push((
                            pair[0].as_str().ok_or_else(bad)?.to_owned(),
                            pair[1].as_str().ok_or_else(bad)?.to_owned(),
                        ));
                    }
                    ZoneKindSpec::Map(map)
                }
                (None, None) => ZoneKindSpec::AsIs,
            };
            zones.push(ZoneSpec { line: t.line, from, to, kind });
        }
        if zones.is_empty() {
            return Err(InputError::new(1, "[[zone]]", "at least one axial [[zone]] is required"));
        }

        // [axial]
        let axial = doc
            .table("axial")
            .ok_or_else(|| InputError::new(1, "[axial]", "the [axial] section is required"))?;
        reject_unknown_keys(axial, "[axial]", &["dz"])?;
        let axial_dz = req_f64(axial, "[axial]", "dz")?;

        // [[source]]
        let mut sources = Vec::new();
        for t in doc.array("source") {
            let section = format!("[[source]] #{}", sources.len() + 1);
            reject_unknown_keys(t, &section, &["material", "groups", "strength"])?;
            let material = req_str(t, &section, "material")?;
            let groups_item = req(t, &section, "groups")?;
            let bad = || {
                InputError::new(
                    groups_item.line,
                    ctx(&section, "groups"),
                    "expected a non-empty array of 1-based group numbers, e.g. [1]",
                )
            };
            let mut groups = Vec::new();
            for g in groups_item.value.as_arr().ok_or_else(bad)? {
                let g = g.as_usize().ok_or_else(bad)?;
                if g == 0 {
                    return Err(InputError::new(
                        groups_item.line,
                        ctx(&section, "groups"),
                        "groups are 1-based; 0 is not a group",
                    ));
                }
                groups.push(g);
            }
            if groups.is_empty() {
                return Err(bad());
            }
            let strength = match t.get("strength") {
                None => 1.0,
                Some(i) => f64_of(i, &section, "strength")?,
            };
            sources.push(SourceSpec { line: t.line, material, groups, strength });
        }
        if kind == CaseKind::FixedSource && sources.is_empty() {
            return Err(InputError::new(
                case.line,
                "[case] kind",
                "a fixed-source case needs at least one [[source]]",
            ));
        }

        // [gates]
        let mut gates = GateSpec::default();
        if let Some(t) = doc.table("gates") {
            reject_unknown_keys(t, "[gates]", &["keff", "flux_ratio"])?;
            if let Some(item) = t.get("keff") {
                let (lo, hi) = f64_pair(item, "[gates]", "keff")?;
                if !(lo < hi) {
                    return Err(InputError::new(
                        item.line,
                        ctx("[gates]", "keff"),
                        format!("band [{lo}, {hi}] must satisfy lo < hi"),
                    ));
                }
                gates.keff = Some((lo, hi));
            }
            if let Some(item) = t.get("flux_ratio") {
                let bad = |msg: &str| {
                    InputError::new(item.line, ctx("[gates]", "flux_ratio"), msg.to_owned())
                };
                let tab = item
                    .value
                    .as_table()
                    .ok_or_else(|| bad("expected an inline table { from, to, group, min, max }"))?;
                let find = |k: &str| tab.iter().find(|(n, _)| n == k).map(|(_, v)| v);
                let s = |k: &str| -> Result<String, InputError> {
                    find(k)
                        .and_then(|v| v.as_str())
                        .map(str::to_owned)
                        .ok_or_else(|| bad(&format!("missing or non-string key {k:?}")))
                };
                let n = |k: &str| -> Result<f64, InputError> {
                    find(k)
                        .and_then(|v| v.as_f64())
                        .ok_or_else(|| bad(&format!("missing or non-numeric key {k:?}")))
                };
                let group = find("group")
                    .and_then(|v| v.as_usize())
                    .ok_or_else(|| bad("missing or non-integer key \"group\""))?;
                if group == 0 {
                    return Err(bad("groups are 1-based; 0 is not a group"));
                }
                gates.flux_ratio = Some(FluxRatioGate {
                    from: s("from")?,
                    to: s("to")?,
                    group,
                    min: n("min")?,
                    max: n("max")?,
                });
            }
        }

        // Pass-through sections, in file order.
        let mut raw = Vec::new();
        for (sname, t) in doc.tables() {
            if !PASSTHROUGH.contains(&sname) {
                continue;
            }
            let mut entries = Vec::new();
            for (k, item) in t.entries() {
                let value = item.value.raw_scalar().ok_or_else(|| {
                    InputError::new(
                        item.line,
                        ctx(&format!("[{sname}]"), k),
                        format!(
                            "solver sections take scalar values only, found {}",
                            item.value.type_name()
                        ),
                    )
                })?;
                let quoted = matches!(item.value, Value::Str(_));
                entries.push((k.clone(), RawEntry { line: item.line, value, quoted }));
            }
            raw.push((sname.to_owned(), entries));
        }

        Ok(CaseSpec {
            name,
            kind,
            geometry: GeometrySpec { library, aliases, pins, lattices, core, zones, axial_dz },
            sources,
            gates,
            raw,
        })
    }

    /// Renders the spec back to canonical TOML. `parse(emit(spec))`
    /// produces a spec that emits the same text.
    pub fn emit(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let g = &self.geometry;

        writeln!(s, "[case]").unwrap();
        writeln!(s, "name = {:?}", self.name).unwrap();
        let kind = match self.kind {
            CaseKind::Eigenvalue => "eigenvalue",
            CaseKind::FixedSource => "fixed-source",
        };
        writeln!(s, "kind = {kind:?}").unwrap();

        writeln!(s, "\n[materials]").unwrap();
        writeln!(s, "library = {:?}", g.library).unwrap();
        if !g.aliases.is_empty() {
            writeln!(s, "aliases = [").unwrap();
            for (new, old) in &g.aliases {
                writeln!(s, "  [{new:?}, {old:?}],").unwrap();
            }
            writeln!(s, "]").unwrap();
        }

        for pin in &g.pins {
            writeln!(s, "\n[[pin]]").unwrap();
            writeln!(s, "name = {:?}", pin.name).unwrap();
            match &pin.kind {
                PinKind::Fuel { fuel, moderator, pitch, radius, rings, sectors } => {
                    writeln!(s, "fuel = {fuel:?}").unwrap();
                    writeln!(s, "moderator = {moderator:?}").unwrap();
                    writeln!(s, "pitch = {pitch:?}").unwrap();
                    writeln!(s, "radius = {radius:?}").unwrap();
                    writeln!(s, "rings = {rings}").unwrap();
                    writeln!(s, "sectors = {sectors}").unwrap();
                }
                PinKind::Cell { fill } => {
                    writeln!(s, "fill = {fill:?}").unwrap();
                }
            }
        }

        for lat in &g.lattices {
            writeln!(s, "\n[[lattice]]").unwrap();
            writeln!(s, "name = {:?}", lat.name).unwrap();
            writeln!(s, "pitch = [{:?}, {:?}]", lat.pitch.0, lat.pitch.1).unwrap();
            let key: Vec<String> = lat.key.iter().map(|(c, n)| format!("{c} = {n:?}")).collect();
            writeln!(s, "key = {{ {} }}", key.join(", ")).unwrap();
            writeln!(s, "rows = [").unwrap();
            for r in &lat.rows {
                writeln!(s, "  {r:?},").unwrap();
            }
            writeln!(s, "]").unwrap();
        }

        writeln!(s, "\n[core]").unwrap();
        writeln!(s, "root = {:?}", g.core.root).unwrap();
        if let Some((w, h)) = g.core.width {
            writeln!(s, "width = [{w:?}, {h:?}]").unwrap();
        }
        let b = g.core.boundary;
        writeln!(
            s,
            "boundary = {{ x_min = {:?}, x_max = {:?}, y_min = {:?}, y_max = {:?}, z_min = \
             {:?}, z_max = {:?} }}",
            bc_name(b.x_min),
            bc_name(b.x_max),
            bc_name(b.y_min),
            bc_name(b.y_max),
            bc_name(b.z_min),
            bc_name(b.z_max),
        )
        .unwrap();

        for z in &g.zones {
            writeln!(s, "\n[[zone]]").unwrap();
            writeln!(s, "from = {:?}", z.from).unwrap();
            writeln!(s, "to = {:?}", z.to).unwrap();
            match &z.kind {
                ZoneKindSpec::AsIs => {}
                ZoneKindSpec::AllTo(m) => writeln!(s, "all_to = {m:?}").unwrap(),
                ZoneKindSpec::Map(map) => {
                    writeln!(s, "map = [").unwrap();
                    for (from, to) in map {
                        writeln!(s, "  [{from:?}, {to:?}],").unwrap();
                    }
                    writeln!(s, "]").unwrap();
                }
            }
        }

        writeln!(s, "\n[axial]").unwrap();
        writeln!(s, "dz = {:?}", g.axial_dz).unwrap();

        for src in &self.sources {
            writeln!(s, "\n[[source]]").unwrap();
            writeln!(s, "material = {:?}", src.material).unwrap();
            let groups: Vec<String> = src.groups.iter().map(|g| g.to_string()).collect();
            writeln!(s, "groups = [{}]", groups.join(", ")).unwrap();
            writeln!(s, "strength = {:?}", src.strength).unwrap();
        }

        if self.gates.keff.is_some() || self.gates.flux_ratio.is_some() {
            writeln!(s, "\n[gates]").unwrap();
            if let Some((lo, hi)) = self.gates.keff {
                writeln!(s, "keff = [{lo:?}, {hi:?}]").unwrap();
            }
            if let Some(fr) = &self.gates.flux_ratio {
                writeln!(
                    s,
                    "flux_ratio = {{ from = {:?}, to = {:?}, group = {}, min = {:?}, max = {:?} }}",
                    fr.from, fr.to, fr.group, fr.min, fr.max
                )
                .unwrap();
            }
        }

        for (sname, entries) in &self.raw {
            writeln!(s, "\n[{sname}]").unwrap();
            for (k, e) in entries {
                if e.quoted {
                    writeln!(s, "{k} = {:?}", e.value).unwrap();
                } else {
                    writeln!(s, "{k} = {}", e.value).unwrap();
                }
            }
        }

        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
[case]
name = "pin"

[materials]
library = "c5g7"

[[pin]]
name = "uo2"
fuel = "UO2"
moderator = "moderator"
pitch = 1.26
radius = 0.54

[[lattice]]
name = "cell"
pitch = [1.26, 1.26]
key = { U = "uo2" }
rows = ["U"]

[core]
root = "cell"

[[zone]]
from = 0.0
to = 10.0

[axial]
dz = 5.0
"#;

    #[test]
    fn minimal_case_parses_with_defaults() {
        let spec = CaseSpec::parse(MINIMAL).unwrap();
        assert_eq!(spec.name, "pin");
        assert_eq!(spec.kind, CaseKind::Eigenvalue);
        assert_eq!(spec.geometry.pins.len(), 1);
        match &spec.geometry.pins[0].kind {
            PinKind::Fuel { rings, sectors, .. } => {
                assert_eq!((*rings, *sectors), (1, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(spec.geometry.core.boundary, BoundaryConds::reflective());
        assert!(spec.sources.is_empty());
        assert_eq!(spec.gates, GateSpec::default());
    }

    #[test]
    fn emit_parse_emit_is_stable() {
        let spec = CaseSpec::parse(MINIMAL).unwrap();
        let text = spec.emit();
        let spec2 = CaseSpec::parse(&text).unwrap();
        // Line numbers shift between the hand-written and canonical text,
        // so the invariant is emitted-text stability, not spec equality.
        assert_eq!(spec2.emit(), text);
    }

    #[test]
    fn unknown_section_is_rejected_with_line() {
        let text = format!("{MINIMAL}\n[mystery]\nx = 1\n");
        let e = CaseSpec::parse(&text).unwrap_err();
        assert!(e.context.contains("mystery"), "{e}");
        assert!(e.line > 20, "{e}");
    }

    #[test]
    fn non_rectangular_lattice_is_rejected() {
        let text = MINIMAL.replace("rows = [\"U\"]", "rows = [\"UU\", \"U\"]");
        let e = CaseSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("rectangular"), "{e}");
        assert!(e.context.contains("lattice"), "{e}");
    }

    #[test]
    fn row_symbol_missing_from_key_is_rejected() {
        let text = MINIMAL.replace("rows = [\"U\"]", "rows = [\"X\"]");
        let e = CaseSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("'X'"), "{e}");
    }

    #[test]
    fn fixed_source_without_sources_is_rejected() {
        let text = MINIMAL.replace("name = \"pin\"", "name = \"pin\"\nkind = \"fixed-source\"");
        let e = CaseSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("[[source]]"), "{e}");
    }

    #[test]
    fn zone_with_all_to_and_map_is_rejected() {
        let text = MINIMAL
            .replace("to = 10.0", "to = 10.0\nall_to = \"moderator\"\nmap = [[\"a\", \"b\"]]");
        let e = CaseSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("not both"), "{e}");
    }

    #[test]
    fn passthrough_sections_survive_round_trip() {
        let text = format!(
            "{MINIMAL}\n[solver]\ntolerance = 2e-4\nmode = \"otf\"\n[tracks]\nnum_azim = 4\n"
        );
        let spec = CaseSpec::parse(&text).unwrap();
        assert_eq!(spec.raw.len(), 2);
        let solver = &spec.raw[0];
        assert_eq!(solver.0, "solver");
        assert_eq!(solver.1[0].1.value, "2e-4");
        assert!(!solver.1[0].1.quoted);
        assert!(solver.1[1].1.quoted);
        let emitted = spec.emit();
        assert!(emitted.contains("tolerance = 2e-4"), "{emitted}");
        assert!(emitted.contains("mode = \"otf\""), "{emitted}");
        let spec2 = CaseSpec::parse(&emitted).unwrap();
        assert_eq!(spec2.emit(), emitted);
    }

    #[test]
    fn exact_float_text_survives_round_trip() {
        // Shortest-repr float text must survive parse -> emit unchanged so
        // geometry lowered from a re-emitted case is bit-identical.
        let text = MINIMAL.replace("to = 10.0", "to = 42.839999999999996");
        let spec = CaseSpec::parse(&text).unwrap();
        assert!(spec.emit().contains("to = 42.839999999999996"), "{}", spec.emit());
    }

    #[test]
    fn bad_boundary_face_and_value_are_rejected() {
        let text = MINIMAL
            .replace("root = \"cell\"", "root = \"cell\"\nboundary = { x_min = \"mirror\" }");
        let e = CaseSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("mirror"), "{e}");

        let text =
            MINIMAL.replace("root = \"cell\"", "root = \"cell\"\nboundary = { top = \"vacuum\" }");
        let e = CaseSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("top"), "{e}");
    }

    #[test]
    fn duplicate_pin_name_is_rejected() {
        let extra = "\n[[pin]]\nname = \"uo2\"\nfill = \"moderator\"\n";
        let text = format!("{MINIMAL}{extra}");
        let e = CaseSpec::parse(&text).unwrap_err();
        assert!(e.message.contains("already"), "{e}");
    }
}
