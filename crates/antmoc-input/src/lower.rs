//! Lowering a [`CaseSpec`] to the solver's geometry types.
//!
//! The output is the same shape the hardcoded C5G7 builder produces — a
//! finalized [`Geometry`], an [`AxialModel`], and a [`MaterialLibrary`] —
//! so the pipeline can run a declarative case through the exact code path
//! it runs the benchmark through. FSR enumeration is structural (a DFS
//! over the universe tree), so a case that describes the same model as a
//! hardcoded builder yields bit-identical flat source regions even though
//! the arena insertion order differs.

use std::collections::HashMap;

use antmoc_geom::axial::{AxialModel, Zone, ZoneKind};
use antmoc_geom::c5g7::PinAddress;
use antmoc_geom::csg::{Cell, Fill, Lattice, Universe, UniverseId};
use antmoc_geom::geometry::{FsrId, Geometry, GeometryBuilder};
use antmoc_geom::pin::PinBuilder;
use antmoc_xs::{c5g7 as xs7, MaterialId, MaterialLibrary};

use crate::spec::{CaseSpec, InputError, PinKind, ZoneKindSpec};

/// How pin addresses decode from FSR paths, fixed by the case's lattice
/// nesting depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PinLayout {
    /// Root lattice of assemblies, assemblies are lattices of pins
    /// (the C5G7 shape): `(assembly ix, iy)` then `(pin ix, iy)`.
    TwoLevel,
    /// Root lattice of pins: assembly is always `(0, 0)`.
    OneLevel,
    /// No lattice root; pin rates are not addressable.
    None,
}

/// A `[[source]]` with its material reference resolved.
#[derive(Debug, Clone, PartialEq)]
pub struct LoweredSource {
    pub material: MaterialId,
    /// 0-based energy groups.
    pub groups: Vec<usize>,
    pub strength: f64,
}

/// The lowered model: everything the pipeline needs to run the case.
#[derive(Debug)]
pub struct LoweredModel {
    pub geometry: Geometry,
    pub axial: AxialModel,
    pub library: MaterialLibrary,
    pub pin_layout: PinLayout,
    pub sources: Vec<LoweredSource>,
}

impl LoweredModel {
    /// Decodes the pin address of a radial FSR, mirroring
    /// [`antmoc_geom::c5g7::C5g7::pin_of_fsr`] for the case's layout.
    pub fn pin_of_fsr(&self, f: FsrId) -> Option<PinAddress> {
        let path = self.geometry.fsr_path(f);
        match self.pin_layout {
            PinLayout::TwoLevel => {
                if path.len() < 6 {
                    return None;
                }
                Some(PinAddress {
                    assembly: (path[1] as usize, path[2] as usize),
                    pin: (path[4] as usize, path[5] as usize),
                })
            }
            PinLayout::OneLevel => {
                if path.len() < 4 {
                    return None;
                }
                Some(PinAddress { assembly: (0, 0), pin: (path[1] as usize, path[2] as usize) })
            }
            PinLayout::None => None,
        }
    }
}

/// A named thing lattice rows can reference.
enum Node {
    Pin { uni: UniverseId, spec: usize },
    Lattice { uni: UniverseId, extent: (f64, f64) },
}

fn resolve_material(
    library: &MaterialLibrary,
    name: &str,
    line: usize,
    context: &str,
) -> Result<MaterialId, InputError> {
    library.by_name(name).map(|(id, _)| id).ok_or_else(|| {
        let known: Vec<&str> = library.iter().map(|(_, m)| m.name.as_str()).collect();
        InputError::new(
            line,
            context.to_owned(),
            format!("unknown material {name:?}; the library has: {}", known.join(", ")),
        )
    })
}

/// Lowers a parsed case to geometry, axial structure, and materials.
pub fn lower(spec: &CaseSpec) -> Result<LoweredModel, InputError> {
    let g = &spec.geometry;

    // Material library and aliases.
    let mut library = match g.library.as_str() {
        "c5g7" => xs7::library(),
        "c5g7-rodded" => xs7::library_with_rod(),
        other => {
            return Err(InputError::new(
                1,
                "[materials] library",
                format!("unknown library {other:?}; available: c5g7, c5g7-rodded"),
            ))
        }
    };
    for (new, old) in &g.aliases {
        let (_, m) = library.by_name(old).ok_or_else(|| {
            let known: Vec<&str> = library.iter().map(|(_, m)| m.name.as_str()).collect();
            InputError::new(
                1,
                "[materials] aliases",
                format!("unknown material {old:?}; the library has: {}", known.join(", ")),
            )
        })?;
        if library.by_name(new).is_some() {
            return Err(InputError::new(
                1,
                "[materials] aliases",
                format!("alias {new:?} collides with an existing material"),
            ));
        }
        let mut m = m.clone();
        m.name = new.clone();
        library.add(m);
    }

    let mut b = GeometryBuilder::new();
    let mut nodes: HashMap<&str, Node> = HashMap::new();

    // Pin universes, in declaration order.
    for (idx, pin) in g.pins.iter().enumerate() {
        let section = format!("[[pin]] {:?}", pin.name);
        let uni = match &pin.kind {
            PinKind::Fuel { fuel, moderator, pitch, radius, rings, sectors } => {
                let fuel = resolve_material(&library, fuel, pin.line, &section)?;
                let moderator = resolve_material(&library, moderator, pin.line, &section)?;
                let builder =
                    PinBuilder { pitch: *pitch, radius: *radius, rings: *rings, sectors: *sectors };
                if let Err(msg) = builder.validate() {
                    return Err(InputError::new(pin.line, section, msg));
                }
                builder.build(&mut b, fuel, moderator)
            }
            PinKind::Cell { fill } => {
                let fill = resolve_material(&library, fill, pin.line, &section)?;
                b.add_universe(Universe {
                    cells: vec![Cell { region: vec![], fill: Fill::Material(fill) }],
                    name: pin.name.clone(),
                })
            }
        };
        nodes.insert(&pin.name, Node::Pin { uni, spec: idx });
    }

    // Area hints for homogeneous cell pins come from the lattice that
    // places them (a cell pin covers one lattice cell); collected while
    // lattices resolve, applied before finalize.
    let mut cell_areas: HashMap<usize, (f64, usize)> = HashMap::new();
    // Whether each lattice (by name) nests other lattices.
    let mut nests: HashMap<String, bool> = HashMap::new();

    for lat in &g.lattices {
        let section = format!("[[lattice]] {:?}", lat.name);
        let nx = lat.rows[0].chars().count();
        let ny = lat.rows.len();
        let (px, py) = lat.pitch;
        if !(px > 0.0 && py > 0.0) {
            return Err(InputError::new(lat.line, section, "pitch must be positive"));
        }
        let mut has_lattice_children = false;
        let mut unis = Vec::with_capacity(nx * ny);
        // Rows are written top-to-bottom; lattice index iy grows toward
        // +y, so flip.
        for iy in 0..ny {
            let row: Vec<char> = lat.rows[ny - 1 - iy].chars().collect();
            for &c in row.iter().take(nx) {
                let target = &lat.key.iter().find(|(k, _)| *k == c).unwrap().1;
                let node = nodes.get(target.as_str()).ok_or_else(|| {
                    InputError::new(
                        lat.line,
                        section.clone(),
                        format!(
                            "key symbol {c:?} maps to {target:?}, which is not a declared pin \
                             or lattice (nested lattices must be declared before their parent)"
                        ),
                    )
                })?;
                let uni = match node {
                    Node::Pin { uni, spec } => {
                        match &g.pins[*spec].kind {
                            PinKind::Fuel { pitch, .. } => {
                                if (pitch - px).abs() > 1e-12 || (pitch - py).abs() > 1e-12 {
                                    return Err(InputError::new(
                                        lat.line,
                                        section.clone(),
                                        format!(
                                            "pin {target:?} has pitch {pitch} but the lattice \
                                             pitch is [{px}, {py}]"
                                        ),
                                    ));
                                }
                            }
                            PinKind::Cell { .. } => {
                                let area = px * py;
                                match cell_areas.get(spec) {
                                    Some((prev, prev_line)) if (prev - area).abs() > 1e-12 => {
                                        return Err(InputError::new(
                                            lat.line,
                                            section.clone(),
                                            format!(
                                                "cell pin {target:?} is placed in lattices of \
                                                 different pitches ({prev} cm^2 at line \
                                                 {prev_line}, {area} cm^2 here); declare one \
                                                 pin per pitch"
                                            ),
                                        ));
                                    }
                                    _ => {
                                        cell_areas.insert(*spec, (area, lat.line));
                                    }
                                }
                            }
                        }
                        *uni
                    }
                    Node::Lattice { uni, extent } => {
                        has_lattice_children = true;
                        if (extent.0 - px).abs() > 1e-12 || (extent.1 - py).abs() > 1e-12 {
                            return Err(InputError::new(
                                lat.line,
                                section.clone(),
                                format!(
                                    "nested lattice {target:?} spans [{}, {}] but the parent \
                                     cell is [{px}, {py}]",
                                    extent.0, extent.1
                                ),
                            ));
                        }
                        *uni
                    }
                };
                unis.push(uni);
            }
        }
        let lat_id = b.add_lattice(Lattice {
            nx,
            ny,
            pitch_x: px,
            pitch_y: py,
            universes: unis,
            name: lat.name.clone(),
        });
        let wrapper = b.add_universe(Universe {
            cells: vec![Cell { region: vec![], fill: Fill::Lattice(lat_id) }],
            name: lat.name.clone(),
        });
        nests.insert(lat.name.clone(), has_lattice_children);
        nodes.insert(
            &lat.name,
            Node::Lattice { uni: wrapper, extent: (nx as f64 * px, ny as f64 * py) },
        );
    }

    // The core: domain extent and the root universe.
    let core = &g.core;
    let root_node = nodes.get(core.root.as_str()).ok_or_else(|| {
        InputError::new(
            core.line,
            "[core] root",
            format!("{:?} is not a declared pin or lattice", core.root),
        )
    })?;
    let (root_uni, width, pin_layout) = match root_node {
        Node::Lattice { uni, extent } => {
            if let Some((w, h)) = core.width {
                if (w - extent.0).abs() > 1e-12 || (h - extent.1).abs() > 1e-12 {
                    return Err(InputError::new(
                        core.line,
                        "[core] width",
                        format!(
                            "explicit width [{w}, {h}] does not match the root lattice extent \
                             [{}, {}]",
                            extent.0, extent.1
                        ),
                    ));
                }
            }
            let layout = if nests[&core.root] { PinLayout::TwoLevel } else { PinLayout::OneLevel };
            (*uni, *extent, layout)
        }
        Node::Pin { uni, spec } => {
            let (w, h) = core.width.ok_or_else(|| {
                InputError::new(
                    core.line,
                    "[core] width",
                    "width = [w, h] is required when the root is a pin",
                )
            })?;
            match &g.pins[*spec].kind {
                PinKind::Fuel { pitch, .. } => {
                    if (pitch - w).abs() > 1e-12 || (pitch - h).abs() > 1e-12 {
                        return Err(InputError::new(
                            core.line,
                            "[core] width",
                            format!("width [{w}, {h}] does not match the root pin pitch {pitch}"),
                        ));
                    }
                }
                PinKind::Cell { .. } => {
                    cell_areas.insert(*spec, (w * h, core.line));
                }
            }
            (*uni, (w, h), PinLayout::None)
        }
    };

    for (spec, (area, _)) in &cell_areas {
        if let Some(Node::Pin { uni, .. }) = nodes.get(g.pins[*spec].name.as_str()) {
            b.set_area_hint(*uni, 0, *area);
        }
    }

    // Axial zones: validated here with line context (the geometry layer
    // would only assert), then resolved to material ids.
    if !(g.axial_dz > 0.0) {
        return Err(InputError::new(1, "[axial] dz", "dz must be positive"));
    }
    let mut zones = Vec::with_capacity(g.zones.len());
    for (i, z) in g.zones.iter().enumerate() {
        let section = format!("[[zone]] #{}", i + 1);
        if !(z.from < z.to) {
            return Err(InputError::new(
                z.line,
                section,
                format!("zone must have from < to, got [{}, {}]", z.from, z.to),
            ));
        }
        if i > 0 {
            let prev = g.zones[i - 1].to;
            if z.from < prev - 1e-12 {
                return Err(InputError::new(
                    z.line,
                    section,
                    format!(
                        "overlapping axial stack: this zone starts at {} but the previous zone \
                         ends at {prev}",
                        z.from
                    ),
                ));
            }
            if z.from > prev + 1e-12 {
                return Err(InputError::new(
                    z.line,
                    section,
                    format!(
                        "gap in the axial stack: this zone starts at {} but the previous zone \
                         ends at {prev}",
                        z.from
                    ),
                ));
            }
        }
        let kind = match &z.kind {
            ZoneKindSpec::AsIs => ZoneKind::AsIs,
            ZoneKindSpec::AllTo(name) => {
                ZoneKind::AllTo(resolve_material(&library, name, z.line, &section)?)
            }
            ZoneKindSpec::Map(pairs) => {
                let mut map = Vec::with_capacity(pairs.len());
                for (from, to) in pairs {
                    map.push((
                        resolve_material(&library, from, z.line, &section)?,
                        resolve_material(&library, to, z.line, &section)?,
                    ));
                }
                ZoneKind::Map(map)
            }
        };
        zones.push(Zone { z_lo: z.from, z_hi: z.to, kind });
    }
    let z_range = (zones[0].z_lo, zones.last().unwrap().z_hi);

    let geometry = b.finalize(
        root_uni,
        width.0,
        width.1,
        (width.0 / 2.0, width.1 / 2.0),
        z_range,
        core.boundary,
    );
    let axial = AxialModel::new(zones, g.axial_dz);

    // Sources and gate references resolve against the final library.
    let num_groups = library.num_groups();
    let mut sources = Vec::with_capacity(spec.sources.len());
    for (i, src) in spec.sources.iter().enumerate() {
        let section = format!("[[source]] #{}", i + 1);
        let material = resolve_material(&library, &src.material, src.line, &section)?;
        let mut groups = Vec::with_capacity(src.groups.len());
        for &gidx in &src.groups {
            if gidx > num_groups {
                return Err(InputError::new(
                    src.line,
                    section.clone(),
                    format!("group {gidx} is out of range; the library has {num_groups} groups"),
                ));
            }
            groups.push(gidx - 1);
        }
        sources.push(LoweredSource { material, groups, strength: src.strength });
    }
    if let Some(fr) = &spec.gates.flux_ratio {
        resolve_material(&library, &fr.from, 1, "[gates] flux_ratio")?;
        resolve_material(&library, &fr.to, 1, "[gates] flux_ratio")?;
        if fr.group > num_groups {
            return Err(InputError::new(
                1,
                "[gates] flux_ratio",
                format!("group {} is out of range; the library has {num_groups} groups", fr.group),
            ));
        }
    }

    Ok(LoweredModel { geometry, axial, library, pin_layout, sources })
}

/// Convenience: parse then lower.
pub fn lower_text(text: &str) -> Result<LoweredModel, InputError> {
    lower(&CaseSpec::parse(text)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PIN_CELL: &str = r#"
[case]
name = "pin"

[materials]
library = "c5g7"

[[pin]]
name = "uo2"
fuel = "UO2"
moderator = "moderator"
pitch = 1.26
radius = 0.54
rings = 3
sectors = 4

[[lattice]]
name = "cell"
pitch = [1.26, 1.26]
key = { U = "uo2" }
rows = ["U"]

[core]
root = "cell"

[[zone]]
from = 0.0
to = 10.0

[axial]
dz = 5.0
"#;

    #[test]
    fn pin_cell_lowers_to_expected_fsrs() {
        let m = lower_text(PIN_CELL).unwrap();
        // 3 rings x 4 sectors fuel + 4 moderator sectors.
        assert_eq!(m.geometry.num_fsrs(), 16);
        assert_eq!(m.pin_layout, PinLayout::OneLevel);
        assert_eq!(m.axial.z_range(), (0.0, 10.0));
        let (uo2, _) = m.library.by_name("UO2").unwrap();
        assert_eq!(m.geometry.find(0.63, 0.63).unwrap().material, uo2);
        let total: f64 = m.geometry.fsrs().filter_map(|f| m.geometry.fsr_area_hint(f)).sum();
        assert!((total - 1.26 * 1.26).abs() < 1e-12, "hinted {total}");
    }

    #[test]
    fn one_level_pin_addresses_decode() {
        let m = lower_text(PIN_CELL).unwrap();
        let loc = m.geometry.find(0.63, 0.63).unwrap();
        let addr = m.pin_of_fsr(loc.fsr).unwrap();
        assert_eq!(addr.assembly, (0, 0));
        assert_eq!(addr.pin, (0, 0));
    }

    #[test]
    fn unknown_material_ref_points_at_the_pin() {
        let text = PIN_CELL.replace("fuel = \"UO2\"", "fuel = \"UO3\"");
        let e = lower_text(&text).unwrap_err();
        assert!(e.message.contains("UO3"), "{e}");
        assert!(e.message.contains("the library has"), "{e}");
        assert!(e.context.contains("pin"), "{e}");
        assert!(e.line > 1, "{e}");
    }

    #[test]
    fn overlapping_axial_stack_is_rejected() {
        let extra = "\n[[zone]]\nfrom = 8.0\nto = 20.0\n";
        let text = format!("{PIN_CELL}{extra}");
        let e = lower_text(&text).unwrap_err();
        assert!(e.message.contains("overlapping"), "{e}");
        assert!(e.context.contains("#2"), "{e}");
    }

    #[test]
    fn axial_gap_is_rejected() {
        let extra = "\n[[zone]]\nfrom = 12.0\nto = 20.0\n";
        let text = format!("{PIN_CELL}{extra}");
        let e = lower_text(&text).unwrap_err();
        assert!(e.message.contains("gap"), "{e}");
    }

    #[test]
    fn alias_clones_a_material() {
        let text = PIN_CELL.replace(
            "library = \"c5g7\"",
            "library = \"c5g7\"\naliases = [[\"my-water\", \"moderator\"]]",
        );
        let m = lower_text(&text).unwrap();
        let (id, mat) = m.library.by_name("my-water").unwrap();
        assert_eq!(mat.name, "my-water");
        let (base, base_mat) = m.library.by_name("moderator").unwrap();
        assert_ne!(id, base);
        assert_eq!(mat.num_groups(), base_mat.num_groups());
    }

    #[test]
    fn lattice_pitch_must_match_pin_pitch() {
        let text = PIN_CELL.replace("pitch = [1.26, 1.26]", "pitch = [2.0, 2.0]");
        let e = lower_text(&text).unwrap_err();
        assert!(e.message.contains("pitch"), "{e}");
    }

    #[test]
    fn nested_lattice_must_fill_parent_cell() {
        let extra = "\n[[lattice]]\nname = \"outer\"\npitch = [2.0, 2.0]\n\
                     key = { C = \"cell\" }\nrows = [\"C\"]\n";
        let text = format!("{PIN_CELL}{extra}").replace("root = \"cell\"", "root = \"outer\"");
        let e = lower_text(&text).unwrap_err();
        assert!(e.message.contains("spans"), "{e}");
    }

    #[test]
    fn two_level_layout_detected_for_nested_lattices() {
        let extra = "\n[[lattice]]\nname = \"outer\"\npitch = [1.26, 1.26]\n\
                     key = { C = \"cell\" }\nrows = [\"CC\", \"CC\"]\n";
        let text = format!("{PIN_CELL}{extra}").replace("root = \"cell\"", "root = \"outer\"");
        let m = lower_text(&text).unwrap();
        assert_eq!(m.pin_layout, PinLayout::TwoLevel);
        assert_eq!(m.geometry.num_fsrs(), 4 * 16);
        // Pin (0, 0) of assembly (1, 1): x, y in the upper-right cell.
        let loc = m.geometry.find(1.26 + 0.63, 1.26 + 0.63).unwrap();
        let addr = m.pin_of_fsr(loc.fsr).unwrap();
        assert_eq!(addr.assembly, (1, 1));
        assert_eq!(addr.pin, (0, 0));
    }

    #[test]
    fn sources_resolve_to_zero_based_groups() {
        let text = PIN_CELL.replace(
            "[axial]",
            "[[source]]\nmaterial = \"moderator\"\ngroups = [1, 7]\nstrength = 2.5\n\n[axial]",
        );
        let m = lower_text(&text).unwrap();
        assert_eq!(m.sources.len(), 1);
        assert_eq!(m.sources[0].groups, vec![0, 6]);
        assert_eq!(m.sources[0].strength, 2.5);

        let bad = text.replace("groups = [1, 7]", "groups = [8]");
        let e = lower_text(&bad).unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
    }

    #[test]
    fn cell_pin_takes_area_from_its_lattice() {
        let text = PIN_CELL.replace(
            "key = { U = \"uo2\" }\nrows = [\"U\"]",
            "key = { U = \"uo2\", W = \"water\" }\nrows = [\"UW\"]",
        );
        let text = text.replace(
            "[[lattice]]",
            "[[pin]]\nname = \"water\"\nfill = \"moderator\"\n\n[[lattice]]",
        );
        let m = lower_text(&text).unwrap();
        assert_eq!(m.geometry.num_fsrs(), 17);
        let total: f64 = m.geometry.fsrs().filter_map(|f| m.geometry.fsr_area_hint(f)).sum();
        assert!((total - 2.0 * 1.26 * 1.26).abs() < 1e-12, "hinted {total}");
    }
}
