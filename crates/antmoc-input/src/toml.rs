//! A minimal TOML-subset parser with line tracking.
//!
//! The declarative case format needs tables, arrays-of-tables, strings,
//! numbers, booleans, (possibly multiline) arrays, and single-line inline
//! tables — and nothing else. Rather than pull in a dependency, this
//! module parses exactly that subset, remembering the source line of
//! every key so downstream validation can point at the offending input.
//!
//! Numbers are kept as their *raw text* (`Value::Num("2e-4")`): the case
//! format forwards solver settings verbatim into the INI-style
//! [`RunConfig`](https://docs.rs) interpreter, and re-emitting a case
//! must not reformat values the author wrote.

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string (content only, escapes resolved).
    Str(String),
    /// A numeric scalar, kept as raw text; parse on demand.
    Num(String),
    Bool(bool),
    /// `[a, b, ...]`, possibly spanning lines.
    Arr(Vec<Value>),
    /// `{ k = v, ... }` on one line.
    Table(Vec<(String, Value)>),
}

impl Value {
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "string",
            Value::Num(_) => "number",
            Value::Bool(_) => "boolean",
            Value::Arr(_) => "array",
            Value::Table(_) => "inline table",
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_table(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    /// The raw scalar text of a string, number, or boolean — what an
    /// INI-style consumer would have seen on the right of `=`.
    pub fn raw_scalar(&self) -> Option<String> {
        match self {
            Value::Str(s) => Some(s.clone()),
            Value::Num(raw) => Some(raw.clone()),
            Value::Bool(b) => Some(b.to_string()),
            _ => None,
        }
    }
}

/// A value plus the line its key appeared on.
#[derive(Debug, Clone, PartialEq)]
pub struct Item {
    pub line: usize,
    pub value: Value,
}

/// A `[section]` (or one element of a `[[section]]` array).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Table {
    /// Line of the section header (0 for the implicit root table).
    pub line: usize,
    entries: Vec<(String, Item)>,
}

impl Table {
    pub fn get(&self, key: &str) -> Option<&Item> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn entries(&self) -> &[(String, Item)] {
        &self.entries
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// A parsed document: named tables and arrays-of-tables, in file order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Doc {
    tables: Vec<(String, Table)>,
    arrays: Vec<(String, Vec<Table>)>,
}

impl Doc {
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|(n, _)| n == name).map(|(_, t)| t)
    }

    pub fn array(&self, name: &str) -> &[Table] {
        self.arrays.iter().find(|(n, _)| n == name).map(|(_, t)| t.as_slice()).unwrap_or(&[])
    }

    pub fn tables(&self) -> impl Iterator<Item = (&str, &Table)> {
        self.tables.iter().map(|(n, t)| (n.as_str(), t))
    }

    pub fn arrays(&self) -> impl Iterator<Item = (&str, &[Table])> {
        self.arrays.iter().map(|(n, t)| (n.as_str(), t.as_slice()))
    }

    /// Parses the TOML subset.
    pub fn parse(text: &str) -> Result<Self, TomlError> {
        Parser { b: text.as_bytes(), i: 0, line: 1 }.doc()
    }
}

/// A parse failure with line context.
#[derive(Debug, Clone, PartialEq)]
pub struct TomlError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for TomlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TomlError {}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    line: usize,
}

fn is_key_byte(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c == b'-' || c == b'.'
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, TomlError> {
        Err(TomlError { line: self.line, message: message.into() })
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    /// Skips spaces and tabs (not newlines).
    fn skip_inline_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t') | Some(b'\r')) {
            self.bump();
        }
    }

    /// Skips a comment through (not past) the newline, if one starts here.
    fn skip_comment(&mut self) {
        if self.peek() == Some(b'#') {
            while let Some(c) = self.peek() {
                if c == b'\n' {
                    break;
                }
                self.bump();
            }
        }
    }

    /// Skips whitespace, newlines, and comments.
    fn skip_trivia(&mut self) {
        loop {
            self.skip_inline_ws();
            self.skip_comment();
            if self.peek() == Some(b'\n') {
                self.bump();
            } else {
                break;
            }
        }
    }

    /// After a header or `key = value`, only trivia may remain on the line.
    fn expect_eol(&mut self) -> Result<(), TomlError> {
        self.skip_inline_ws();
        self.skip_comment();
        match self.peek() {
            None => Ok(()),
            Some(b'\n') => {
                self.bump();
                Ok(())
            }
            Some(c) => self.err(format!("unexpected {:?} after value", c as char)),
        }
    }

    fn key(&mut self) -> Result<String, TomlError> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if is_key_byte(c) {
                self.bump();
            } else {
                break;
            }
        }
        if self.i == start {
            let found = self.peek().map(|c| format!("{:?}", c as char)).unwrap_or("EOF".into());
            return self.err(format!("expected a key, found {found}"));
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.i]).into_owned())
    }

    fn string(&mut self) -> Result<String, TomlError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            if matches!(self.peek(), None | Some(b'\n')) {
                return self.err("unterminated string");
            }
            match self.bump() {
                None | Some(b'\n') => unreachable!(),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    other => {
                        return self.err(format!(
                            "unsupported escape \\{}",
                            other.map(|c| c as char).unwrap_or(' ')
                        ))
                    }
                },
                Some(c) => s.push(c as char),
            }
        }
    }

    fn bare_token(&mut self) -> Result<String, TomlError> {
        let start = self.i;
        while let Some(c) = self.peek() {
            if matches!(c, b',' | b']' | b'}' | b'#' | b'\n' | b' ' | b'\t' | b'\r') {
                break;
            }
            self.bump();
        }
        if self.i == start {
            return self.err("expected a value");
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.i]).into_owned())
    }

    fn value(&mut self) -> Result<Value, TomlError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.bump();
                let mut items = Vec::new();
                loop {
                    self.skip_trivia();
                    if self.peek() == Some(b']') {
                        self.bump();
                        return Ok(Value::Arr(items));
                    }
                    items.push(self.value()?);
                    self.skip_trivia();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b']') => {}
                        _ => return self.err("expected `,` or `]` in array"),
                    }
                }
            }
            Some(b'{') => {
                self.bump();
                let mut pairs: Vec<(String, Value)> = Vec::new();
                loop {
                    self.skip_inline_ws();
                    if self.peek() == Some(b'}') {
                        self.bump();
                        return Ok(Value::Table(pairs));
                    }
                    let k = self.key()?;
                    self.skip_inline_ws();
                    if self.peek() != Some(b'=') {
                        return self.err(format!("expected `=` after {k:?} in inline table"));
                    }
                    self.bump();
                    self.skip_inline_ws();
                    let v = self.value()?;
                    if pairs.iter().any(|(pk, _)| *pk == k) {
                        return self.err(format!("duplicate key {k:?} in inline table"));
                    }
                    pairs.push((k, v));
                    self.skip_inline_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.bump();
                        }
                        Some(b'}') => {}
                        _ => return self.err("expected `,` or `}` in inline table"),
                    }
                }
            }
            _ => {
                let tok = self.bare_token()?;
                match tok.as_str() {
                    "true" => Ok(Value::Bool(true)),
                    "false" => Ok(Value::Bool(false)),
                    _ => Ok(Value::Num(tok)),
                }
            }
        }
    }

    fn doc(mut self) -> Result<Doc, TomlError> {
        let mut doc = Doc::default();
        // Index into either `tables` or an `arrays` tail, as (is_array, idx).
        let mut current: Option<(bool, usize)> = None;
        loop {
            self.skip_trivia();
            let Some(c) = self.peek() else { break };
            if c == b'[' {
                let header_line = self.line;
                self.bump();
                let is_array = self.peek() == Some(b'[');
                if is_array {
                    self.bump();
                }
                self.skip_inline_ws();
                let name = self.key()?;
                self.skip_inline_ws();
                for _ in 0..(if is_array { 2 } else { 1 }) {
                    if self.peek() != Some(b']') {
                        return self.err(format!("malformed section header [{name}"));
                    }
                    self.bump();
                }
                self.expect_eol()?;
                let table = Table { line: header_line, entries: Vec::new() };
                if is_array {
                    let idx = match doc.arrays.iter().position(|(n, _)| *n == name) {
                        Some(i) => i,
                        None => {
                            doc.arrays.push((name.clone(), Vec::new()));
                            doc.arrays.len() - 1
                        }
                    };
                    doc.arrays[idx].1.push(table);
                    current = Some((true, idx));
                } else {
                    if doc.tables.iter().any(|(n, _)| *n == name) {
                        return Err(TomlError {
                            line: header_line,
                            message: format!("section [{name}] appears twice"),
                        });
                    }
                    doc.tables.push((name, table));
                    current = Some((false, doc.tables.len() - 1));
                }
                continue;
            }
            // key = value
            let key_line = self.line;
            let key = self.key()?;
            self.skip_inline_ws();
            if self.peek() != Some(b'=') {
                return self.err(format!("expected `=` after key {key:?}"));
            }
            self.bump();
            self.skip_inline_ws();
            let value = self.value()?;
            self.expect_eol()?;
            let table = match current {
                None => {
                    return Err(TomlError {
                        line: key_line,
                        message: format!("key {key:?} appears before any [section] header"),
                    })
                }
                Some((true, idx)) => doc.arrays[idx].1.last_mut().unwrap(),
                Some((false, idx)) => &mut doc.tables[idx].1,
            };
            if table.get(&key).is_some() {
                return Err(TomlError {
                    line: key_line,
                    message: format!("duplicate key {key:?} in this section"),
                });
            }
            table.entries.push((key, Item { line: key_line, value }));
        }
        Ok(doc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_arrays_and_scalars_parse() {
        let doc = Doc::parse(
            "# header comment\n[case]\nname = \"pin\"  # trailing\nkind = \"eigenvalue\"\n\
             [axial]\ndz = 14.28\nflag = true\n[[pin]]\nname = \"a\"\n[[pin]]\nname = \"b\"\n",
        )
        .unwrap();
        let case = doc.table("case").unwrap();
        assert_eq!(case.get("name").unwrap().value.as_str(), Some("pin"));
        assert_eq!(case.get("name").unwrap().line, 3);
        assert_eq!(doc.table("axial").unwrap().get("dz").unwrap().value.as_f64(), Some(14.28));
        assert_eq!(doc.table("axial").unwrap().get("flag").unwrap().value.as_bool(), Some(true));
        let pins = doc.array("pin");
        assert_eq!(pins.len(), 2);
        assert_eq!(pins[1].get("name").unwrap().value.as_str(), Some("b"));
    }

    #[test]
    fn multiline_arrays_and_nesting_parse() {
        let doc = Doc::parse(
            "[materials]\naliases = [\n  [\"a\", \"b\"],  # pair\n  [\"c\", \"d\"],\n]\n\
             nums = [1, 2.5, 3e-4]\n",
        )
        .unwrap();
        let t = doc.table("materials").unwrap();
        let aliases = t.get("aliases").unwrap().value.as_arr().unwrap();
        assert_eq!(aliases.len(), 2);
        assert_eq!(aliases[0].as_arr().unwrap()[1].as_str(), Some("b"));
        let nums = t.get("nums").unwrap().value.as_arr().unwrap();
        assert_eq!(nums[2].as_f64(), Some(3e-4));
        // Raw text survives for re-emission.
        assert_eq!(nums[2], Value::Num("3e-4".into()));
    }

    #[test]
    fn inline_tables_parse() {
        let doc = Doc::parse(
            "[core]\nboundary = { x_min = \"reflective\", x_max = \"vacuum\" }\n\
             [gates]\nflux_ratio = { group = 1, min = 5.0 }\n",
        )
        .unwrap();
        let b = doc.table("core").unwrap().get("boundary").unwrap().value.as_table().unwrap();
        assert_eq!(b[1].0, "x_max");
        assert_eq!(b[1].1.as_str(), Some("vacuum"));
        let g = doc.table("gates").unwrap().get("flux_ratio").unwrap().value.as_table().unwrap();
        assert_eq!(g[0].1.as_usize(), Some(1));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = Doc::parse("[case]\nname = \"x\"\nname = \"y\"\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate"));

        let e = Doc::parse("top = 1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("before any"));

        let e = Doc::parse("[case]\nname \"x\"\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains('='));

        let e = Doc::parse("[case\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = Doc::parse("[a]\nx = \"unterminated\n").unwrap_err();
        assert_eq!(e.line, 2);

        let e = Doc::parse("[a]\n[a]\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("twice"));
    }

    #[test]
    fn strings_support_escapes() {
        let doc = Doc::parse("[a]\ns = \"tab\\there \\\"quoted\\\"\"\n").unwrap();
        assert_eq!(
            doc.table("a").unwrap().get("s").unwrap().value.as_str(),
            Some("tab\there \"quoted\"")
        );
    }

    #[test]
    fn raw_scalars_round_trip_number_text() {
        let doc = Doc::parse("[solver]\ntolerance = 2e-4\nmode = \"otf\"\non = true\n").unwrap();
        let t = doc.table("solver").unwrap();
        assert_eq!(t.get("tolerance").unwrap().value.raw_scalar(), Some("2e-4".into()));
        assert_eq!(t.get("mode").unwrap().value.raw_scalar(), Some("otf".into()));
        assert_eq!(t.get("on").unwrap().value.raw_scalar(), Some("true".into()));
    }
}
