//! Declarative problem descriptions for the ANT-MOC pipeline.
//!
//! A *case file* is a small TOML document describing a lattice transport
//! problem: a material library reference (into `antmoc-xs`), pin
//! universes, rectangular lattices, an axial stack, physics gates, and
//! pass-through solver sections. The crate parses it ([`CaseSpec`]),
//! re-emits it canonically ([`CaseSpec::emit`]), and lowers it to the
//! exact `antmoc-geom` types the hardcoded benchmark builders produce
//! ([`lower`]), so one pipeline runs both.
//!
//! The shipped cases live under `cases/` at the repository root; see
//! `cases/README.md` for the suite and the README "Problem format"
//! section for the dialect.

pub mod lower;
pub mod spec;
pub mod toml;

pub use lower::{lower, lower_text, LoweredModel, LoweredSource, PinLayout};
pub use spec::{
    CaseKind, CaseSpec, CoreSpec, FluxRatioGate, GateSpec, GeometrySpec, InputError, LatticeSpec,
    PinKind, PinSpec, RawEntry, SourceSpec, ZoneKindSpec, ZoneSpec,
};
