#!/usr/bin/env bash
# Golden-assembly pin for the sweep kernel's f64x4 lane loops.
#
# The vector path in antmoc-solver (simd.rs + the group-vectorized
# kernel) deliberately avoids intrinsics: it writes fixed-trip-count lane
# loops and relies on LLVM's autovectorizer to lower them to packed
# double-precision arithmetic. That contract is invisible to the test
# suite — the scalar fallback is bitwise identical by design — so a
# toolchain or codegen regression that silently de-vectorizes the kernel
# would only show up as a perf cliff. This script pins the contract: the
# release-mode assembly of antmoc-solver must contain packed f64 ops.
#
# Enforced on x86_64 (packed SSE2/AVX: [v]addpd / [v]mulpd / [v]subpd /
# vfmadd*pd). On other architectures the check degrades to a warning:
# NEON/SVE mnemonics vary too much across triples to pin reliably.
#
#   scripts/check_simd_asm.sh
set -euo pipefail
cd "$(dirname "$0")/.."

arch="$(uname -m)"

echo "check_simd_asm: emitting release assembly for antmoc-solver ($arch)"
cargo rustc --release -q -p antmoc-solver -- --emit asm

asm_files=$(ls -t target/release/deps/antmoc_solver-*.s 2>/dev/null || true)
if [ -z "$asm_files" ]; then
    echo "check_simd_asm: FAIL — no assembly emitted (expected target/release/deps/antmoc_solver-*.s)" >&2
    exit 1
fi
newest=$(echo "$asm_files" | head -1)

case "$arch" in
x86_64 | amd64)
    pattern='\bv?(addpd|mulpd|subpd)\b|\bvfmadd[0-9]*pd\b'
    ;;
*)
    # aarch64 'fadd v0.2d' and friends as a courtesy check only.
    pattern='\bfadd[[:space:]]+v[0-9]+\.2d|\bfmul[[:space:]]+v[0-9]+\.2d'
    ;;
esac

hits=$(grep -cE "$pattern" "$newest" || true)
echo "check_simd_asm: $newest: $hits packed f64 instruction(s)"

if [ "$hits" -gt 0 ]; then
    echo "check_simd_asm: PASS — lane loops lower to packed arithmetic"
    exit 0
fi

case "$arch" in
x86_64 | amd64)
    echo "check_simd_asm: FAIL — no packed f64 ops in the release assembly;" >&2
    echo "  the f64x4 lane loops in crates/antmoc-solver/src/simd.rs no longer autovectorize" >&2
    exit 1
    ;;
*)
    echo "check_simd_asm: WARN — no packed ops matched on $arch (check is best-effort off x86_64)"
    exit 0
    ;;
esac
