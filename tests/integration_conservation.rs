//! Physics-level integration checks: neutron balance and quadrature
//! convergence on problems with known structure.

use antmoc::geom::geometry::homogeneous_box;
use antmoc::geom::{AxialModel, Bc, BoundaryConds};
use antmoc::solver::source::{absorption, compute_reduced_source, fission_production};
use antmoc::solver::{
    solve_eigenvalue, CpuSweeper, EigenOptions, FluxBanks, Problem, SegmentSource,
};
use antmoc::track::TrackParams;
use antmoc::xs::c5g7;

fn fuel_box(bcs: BoundaryConds, params: TrackParams) -> Problem {
    let lib = c5g7::library();
    let (uo2, _) = lib.by_name("UO2").unwrap();
    let g = homogeneous_box(uo2, 4.0, 4.0, (0.0, 4.0), bcs);
    let axial = AxialModel::uniform(0.0, 4.0, 2.0);
    Problem::build(g, axial, &lib, params)
}

fn params() -> TrackParams {
    TrackParams {
        num_azim: 8,
        radial_spacing: 0.4,
        num_polar: 4,
        axial_spacing: 0.8,
        ..Default::default()
    }
}

#[test]
fn neutron_balance_holds_in_a_leaky_box() {
    // For the converged eigenpair, production / (absorption + leakage)
    // equals k_eff.
    let mut bcs = BoundaryConds::reflective();
    bcs.z_max = Bc::Vacuum;
    bcs.x_max = Bc::Vacuum;
    let p = fuel_box(bcs, params());
    let segsrc = SegmentSource::otf();
    let mut sweeper = CpuSweeper::new(&segsrc);
    let opts = EigenOptions { tolerance: 3e-5, max_iterations: 2500, ..Default::default() };
    let r = solve_eigenvalue(&p, &mut sweeper, &opts);
    assert!(r.converged);

    // One extra sweep at the converged state to measure leakage.
    let n = p.num_fsrs() * p.num_groups();
    let mut q = vec![0.0; n];
    compute_reduced_source(&p, &r.phi, r.keff, &mut q);
    let banks = FluxBanks::new(p.num_tracks(), p.num_groups());
    // Run a few sweeps so boundary fluxes re-equilibrate in the fresh
    // banks.
    let mut banks = banks;
    let mut leak = 0.0;
    for _ in 0..200 {
        let out = antmoc::solver::sweep::transport_sweep(&p, &segsrc, &q, &banks);
        leak = out.leakage;
        banks.swap();
    }

    let (_, production) = fission_production(&p, &r.phi);
    let absorbed = absorption(&p, &r.phi);
    let k_balance = production / (absorbed + leak);
    assert!(
        (k_balance - r.keff).abs() / r.keff < 0.02,
        "balance k {k_balance} vs power-iteration k {}",
        r.keff
    );
}

#[test]
fn angular_refinement_converges_keff() {
    // k_eff differences shrink as the quadrature refines.
    let mut bcs = BoundaryConds::reflective();
    bcs.z_max = Bc::Vacuum;
    let opts = EigenOptions { tolerance: 3e-5, max_iterations: 2500, ..Default::default() };

    let mut ks = Vec::new();
    for (na, np) in [(4usize, 2usize), (8, 4), (16, 6)] {
        let p = fuel_box(
            bcs,
            TrackParams {
                num_azim: na,
                radial_spacing: 0.4,
                num_polar: np,
                axial_spacing: 0.8,
                ..Default::default()
            },
        );
        let segsrc = SegmentSource::otf();
        let mut sweeper = CpuSweeper::new(&segsrc);
        let r = solve_eigenvalue(&p, &mut sweeper, &opts);
        assert!(r.converged, "na={na} np={np} failed to converge");
        ks.push(r.keff);
    }
    let d1 = (ks[1] - ks[0]).abs();
    let d2 = (ks[2] - ks[1]).abs();
    assert!(d2 < d1 + 5e-4, "refinement did not tighten: ks {ks:?} (d1 {d1}, d2 {d2})");
    // And all values in a sane band (a 4 cm half-height fuel slab leaks
    // heavily; k sits around 0.1).
    for k in &ks {
        assert!(*k > 0.05 && *k < 0.3, "k {k} out of band: {ks:?}");
    }
}

#[test]
fn symmetric_problem_produces_symmetric_flux() {
    // An x/y-symmetric box must give an x/y-symmetric scalar flux.
    let mut bcs = BoundaryConds::reflective();
    bcs.z_max = Bc::Vacuum;
    let lib = c5g7::library();
    let (uo2, _) = lib.by_name("UO2").unwrap();
    let g = homogeneous_box(uo2, 4.0, 4.0, (0.0, 4.0), bcs);
    let axial = AxialModel::uniform(0.0, 4.0, 1.0);
    let p = Problem::build(g, axial, &lib, params());
    let segsrc = SegmentSource::otf();
    let mut sweeper = CpuSweeper::new(&segsrc);
    let opts = EigenOptions { tolerance: 3e-5, max_iterations: 2500, ..Default::default() };
    let r = solve_eigenvalue(&p, &mut sweeper, &opts);
    assert!(r.converged);

    // Axial profile must peak at the reflective bottom (z_min) and decay
    // towards the vacuum top: the group-summed flux per axial cell is
    // monotone non-increasing.
    let groups = p.num_groups();
    let axials = p.layout.fsr3d.num_axial();
    let radials = p.layout.fsr3d.num_radial();
    let mut profile = vec![0.0f64; axials];
    for a in 0..axials {
        for rad in 0..radials {
            let f = a * radials + rad;
            for gi in 0..groups {
                profile[a] += r.phi[f * groups + gi];
            }
        }
    }
    for w in profile.windows(2) {
        assert!(w[1] <= w[0] * 1.01, "axial profile should decay towards vacuum: {profile:?}");
    }
}
