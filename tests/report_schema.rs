//! Golden-file regression test for the `RunReport` JSON schema.
//!
//! A fixed, fully deterministic report — covering every schema feature and
//! the scheduler telemetry keys (`sweep.steals`, `sweep.load_ratio`,
//! per-worker busy time) — must serialize byte-for-byte to
//! `tests/golden/run_report.json`. Renaming or retyping an existing key
//! changes the output and fails this test; adding a key means
//! regenerating the golden with `ANTMOC_UPDATE_GOLDEN=1 cargo test -p
//! antmoc --test report_schema` and reviewing the diff.

use antmoc_telemetry::{GaugeStats, HistogramSummary, Json, RunReport, SpanStats};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/run_report.json")
}

/// A report exercising every schema feature with fixed values.
fn representative_report() -> RunReport {
    let mut r = RunReport::default();
    r.set_meta("case", "c5g7");
    r.set_meta("backend", "cpu");
    r.set_meta("mode", "otf");
    r.set_meta("schedule", "l3_sorted");
    r.set_meta("tallies", "auto");
    r.set_meta("exp", "intrinsic");
    r.set_meta("kernel", "vector");
    r.set_meta_num("decomposition_domains", 1.0);

    r.spans.insert("eigen".into(), SpanStats { count: 1, total_s: 2.5, min_s: 2.5, max_s: 2.5 });
    r.spans.insert(
        "eigen/transport_sweep".into(),
        SpanStats { count: 8, total_s: 2.0, min_s: 0.125, max_s: 0.5 },
    );
    r.spans.insert(
        "track_generation".into(),
        SpanStats { count: 1, total_s: 0.25, min_s: 0.25, max_s: 0.25 },
    );

    r.counters.insert("comm.dropped".into(), 3);
    r.counters.insert("comm.flipped".into(), 1);
    r.counters.insert("comm.rank_failures".into(), 1);
    r.counters.insert("comm.retries".into(), 5);
    r.counters.insert("eigen.iterations".into(), 8);
    r.counters.insert("sweep.cas_retries".into(), 3);
    r.counters.insert("sweep.segments".into(), 1_234_567);
    r.counters.insert("sweep.steal_attempts".into(), 42);
    r.counters.insert("sweep.steals".into(), 17);
    r.counters.insert("sweep.tracks".into(), 4096);

    r.gauges
        .insert("solver.flux_bank_bytes".into(), GaugeStats { last: 65536.0, high_water: 65536.0 });
    r.gauges
        .insert("sweep.bytes_per_segment".into(), GaugeStats { last: 288.0, high_water: 288.0 });
    r.gauges.insert("sweep.load_ratio".into(), GaugeStats { last: 1.125, high_water: 1.25 });
    r.gauges
        .insert("sweep.tally_bytes".into(), GaugeStats { last: 389256.0, high_water: 1557024.0 });
    r.gauges.insert("sweep.worker_busy_max_s".into(), GaugeStats { last: 0.5, high_water: 0.5 });
    r.gauges.insert("sweep.worker_busy_mean_s".into(), GaugeStats { last: 0.4, high_water: 0.45 });

    // Histogram quantile snapshots, in the shapes the sweep and comm
    // layers record (nanosecond latencies and per-track retry bursts).
    r.histograms.insert(
        "comm.recv_wait_ns".into(),
        HistogramSummary { count: 96, p50: 18_432, p90: 61_440, p99: 126_976, max: 131_071 },
    );
    r.histograms.insert(
        "sweep.steal_wait_ns".into(),
        HistogramSummary { count: 4, p50: 1_024, p90: 4_096, p99: 4_096, max: 4_000 },
    );
    r.histograms.insert(
        "sweep.track_ns".into(),
        HistogramSummary { count: 4096, p50: 12_288, p90: 28_672, p99: 49_152, max: 50_000 },
    );

    // Per-iteration convergence rows, in the shape the eigen driver
    // appends (parser-canonical Int for non-negative integers).
    for (it, k, res) in [(1i64, 1.05, 0.2), (2, 1.12, 0.04)] {
        r.iterations.push(Json::Obj(vec![
            ("it".into(), Json::Int(it)),
            ("k".into(), Json::Num(k)),
            ("residual".into(), Json::Num(res)),
            ("sweep_s".into(), Json::Num(0.25)),
            ("segments".into(), Json::Int(154_320)),
            ("cas_retries".into(), Json::Int(0)),
            ("checkpoint".into(), Json::Bool(it == 2)),
        ]));
    }

    r.set_section(
        "sweep_workers",
        Json::Obj(vec![
            ("workers".into(), Json::Uint(4)),
            (
                "busy_s".into(),
                Json::Arr(vec![
                    Json::Num(0.5),
                    Json::Num(0.375),
                    Json::Num(0.375),
                    Json::Num(0.35),
                ]),
            ),
            (
                "items".into(),
                Json::Arr(vec![
                    Json::Uint(1100),
                    Json::Uint(1000),
                    Json::Uint(1000),
                    Json::Uint(996),
                ]),
            ),
        ]),
    );
    // The tally/exp kernel resolution, in the exact shape the arena sweep
    // emits.
    r.set_section(
        "sweep_kernel",
        Json::Obj(vec![
            ("tally_mode".into(), Json::Str("privatized".into())),
            ("exp_mode".into(), Json::Str("intrinsic".into())),
            ("workers".into(), Json::Uint(4)),
            ("kernel".into(), Json::Str("vector".into())),
            ("lanes".into(), Json::Uint(4)),
            ("block_kb".into(), Json::Uint(16)),
        ]),
    );
    r.set_section("balance", Json::Obj(vec![("k_balance".into(), Json::Num(1.18))]));
    // The fault-injection summary and the degradation-response log, in the
    // exact shapes `solve_cluster_recovering` emits.
    r.set_section(
        "fault",
        Json::Obj(vec![
            ("seed".into(), Json::Uint(42)),
            ("drop_p".into(), Json::Num(0.05)),
            ("flip_p".into(), Json::Num(0.01)),
            ("max_retries".into(), Json::Uint(24)),
            (
                "deaths".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("rank".into(), Json::Uint(1)),
                    ("iteration".into(), Json::Uint(18)),
                ])]),
            ),
            ("restarts".into(), Json::Uint(1)),
        ]),
    );
    r.set_section(
        "rebalance",
        Json::Obj(vec![(
            "events".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("died_rank".into(), Json::Uint(1)),
                ("at_iteration".into(), Json::Uint(18)),
                ("restart_iteration".into(), Json::Uint(16)),
                ("survivors".into(), Json::Uint(3)),
                ("migrated".into(), Json::Uint(1)),
                ("cut".into(), Json::Num(12.5)),
                (
                    "node_loads".into(),
                    Json::Arr(vec![Json::Num(1.25), Json::Num(1.375), Json::Num(1.5)]),
                ),
            ])]),
        )]),
    );
    r
}

#[test]
fn run_report_schema_matches_golden_file() {
    let produced = representative_report().to_json_string();
    let path = golden_path();
    if std::env::var_os("ANTMOC_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &produced).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        produced, golden,
        "RunReport JSON schema drifted from tests/golden/run_report.json; \
         if the change is intentional, regenerate with ANTMOC_UPDATE_GOLDEN=1 \
         and review the diff"
    );
}

#[test]
fn golden_file_round_trips_losslessly() {
    let golden = std::fs::read_to_string(golden_path()).unwrap();
    let parsed = RunReport::from_json_str(&golden).unwrap();
    // Textual round-trip: re-serializing the parsed report reproduces the
    // golden bytes (the parser reads non-negative ints as Int where the
    // writer used Uint, so struct equality is too strict for sections).
    assert_eq!(parsed.to_json_string(), golden);
    // And the scheduler keys from the scheduler PR are present by name.
    assert_eq!(parsed.counter("sweep.steals"), 17);
    assert_eq!(parsed.counter("sweep.steal_attempts"), 42);
    assert!(parsed.gauges.contains_key("sweep.load_ratio"));
    assert!(parsed.gauges.contains_key("sweep.worker_busy_max_s"));
    assert!(parsed.gauges.contains_key("sweep.worker_busy_mean_s"));
    assert!(parsed.sections.contains_key("sweep_workers"));
    // The tally-kernel keys from the privatized-tallies PR.
    assert_eq!(parsed.counter("sweep.cas_retries"), 3);
    assert!(parsed.gauges.contains_key("sweep.tally_bytes"));
    let kernel = parsed.sections.get("sweep_kernel").expect("sweep_kernel section");
    assert_eq!(kernel.get("tally_mode").and_then(Json::as_str), Some("privatized"));
    assert_eq!(kernel.get("exp_mode").and_then(Json::as_str), Some("intrinsic"));
    assert_eq!(kernel.get("workers").and_then(Json::as_u64), Some(4));
    // The vectorized-kernel keys: which sweep kernel ran, its group-lane
    // width, and the cache-block size the tally reduction used.
    assert_eq!(kernel.get("kernel").and_then(Json::as_str), Some("vector"));
    assert_eq!(kernel.get("lanes").and_then(Json::as_u64), Some(4));
    assert_eq!(kernel.get("block_kb").and_then(Json::as_u64), Some(16));
    assert!(parsed.gauges.contains_key("sweep.bytes_per_segment"));
    // The fault-injection keys: counters plus the `fault` and `rebalance`
    // sections with their event structure.
    assert_eq!(parsed.counter("comm.retries"), 5);
    assert_eq!(parsed.counter("comm.dropped"), 3);
    assert_eq!(parsed.counter("comm.flipped"), 1);
    assert_eq!(parsed.counter("comm.rank_failures"), 1);
    let fault = parsed.sections.get("fault").expect("fault section");
    assert_eq!(fault.get("restarts").and_then(Json::as_u64), Some(1));
    assert_eq!(fault.get("drop_p").and_then(Json::as_f64), Some(0.05));
    let rebalance = parsed.sections.get("rebalance").expect("rebalance section");
    let events = match rebalance.get("events") {
        Some(Json::Arr(events)) => events,
        other => panic!("rebalance.events missing: {other:?}"),
    };
    assert_eq!(events[0].get("survivors").and_then(Json::as_u64), Some(3));
    assert_eq!(events[0].get("migrated").and_then(Json::as_u64), Some(1));
    // The observability keys: histogram quantiles and the per-iteration
    // convergence series.
    assert_eq!(parsed.histograms.len(), 3);
    let track = parsed.histograms.get("sweep.track_ns").expect("sweep.track_ns histogram");
    assert_eq!(track.count, 4096);
    assert_eq!(track.p99, 49_152);
    assert!(parsed.histograms.contains_key("sweep.steal_wait_ns"));
    assert!(parsed.histograms.contains_key("comm.recv_wait_ns"));
    assert_eq!(parsed.iterations.len(), 2);
    assert_eq!(parsed.iterations[0].get("it").and_then(Json::as_u64), Some(1));
    assert_eq!(parsed.iterations[1].get("k").and_then(Json::as_f64), Some(1.12));
    assert_eq!(parsed.iterations[1].get("checkpoint"), Some(&Json::Bool(true)));
}
