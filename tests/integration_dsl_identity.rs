//! The declarative C5G7 case (`cases/c5g7.toml`) must reproduce the
//! hardcoded `antmoc_geom::c5g7` builder exactly: same flat-source
//! regions, same axial mesh, and — on the deterministic serial backend
//! — a bitwise-identical run report. Any drift between the DSL
//! lowering and the reference builder shows up here as a bit diff, not
//! as a physics tolerance.

use antmoc::geom::c5g7::{C5g7, C5g7Options};
use antmoc::geom::AxialModel;
use antmoc::input::{lower, CaseSpec};
use antmoc::{run, BackendConfig, ModelSpec, RunConfig};

fn case_text() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../cases/c5g7.toml");
    std::fs::read_to_string(path).expect("read cases/c5g7.toml")
}

/// The hardcoded builder configured the way the case file declares the
/// model: default resolution, unrodded, 21.42 cm axial cells.
fn hardcoded_options() -> C5g7Options {
    C5g7Options { axial_dz: 21.42, ..Default::default() }
}

fn assert_axial_identical(a: &AxialModel, b: &AxialModel) {
    assert_eq!(a.num_cells(), b.num_cells(), "axial cell count");
    let (pa, pb) = (a.planes(), b.planes());
    assert_eq!(pa.len(), pb.len(), "axial plane count");
    for (i, (x, y)) in pa.iter().zip(pb).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "axial plane {i}: {x} vs {y}");
    }
    assert_eq!(a.zones().len(), b.zones().len(), "axial zone count");
}

#[test]
fn dsl_lowering_matches_the_hardcoded_builder_structurally() {
    let spec = CaseSpec::parse(&case_text()).unwrap();
    let lowered = lower(&spec).unwrap();
    let hard = C5g7::build(hardcoded_options());

    // Material library: same names in the same id order.
    assert_eq!(lowered.library.len(), hard.library.len());
    for ((ida, ma), (idb, mb)) in lowered.library.iter().zip(hard.library.iter()) {
        assert_eq!(ida, idb);
        assert_eq!(ma.name, mb.name);
    }

    // Geometry: the DSL inserts universes in a different arena order,
    // but FSR enumeration is a structural DFS, so every flat-source
    // region must line up: material, area hint, and the lattice path
    // the pin decoder consumes.
    let (g1, g2) = (&lowered.geometry, &hard.geometry);
    assert_eq!(g1.num_fsrs(), g2.num_fsrs(), "FSR count");
    assert_eq!(g1.bcs(), g2.bcs(), "boundary conditions");
    let (b1, b2) = (g1.bounds(), g2.bounds());
    for (x, y) in [(b1.0, b2.0), (b1.1, b2.1), (b1.2, b2.2), (b1.3, b2.3)] {
        assert_eq!(x.to_bits(), y.to_bits(), "radial bounds {b1:?} vs {b2:?}");
    }
    assert_eq!(g1.z_range().0.to_bits(), g2.z_range().0.to_bits());
    assert_eq!(g1.z_range().1.to_bits(), g2.z_range().1.to_bits());
    for f in g1.fsrs() {
        assert_eq!(g1.fsr_material(f), g2.fsr_material(f), "material of {f:?}");
        assert_eq!(g1.fsr_path(f), g2.fsr_path(f), "path of {f:?}");
        let (h1, h2) = (g1.fsr_area_hint(f), g2.fsr_area_hint(f));
        assert_eq!(
            h1.map(f64::to_bits),
            h2.map(f64::to_bits),
            "area hint of {f:?}: {h1:?} vs {h2:?}"
        );
        assert_eq!(lowered.pin_of_fsr(f), hard.pin_of_fsr(f), "pin address of {f:?}");
    }

    assert_axial_identical(&lowered.axial, &hard.axial);
}

#[test]
fn dsl_case_run_report_is_bitwise_identical_to_the_hardcoded_model() {
    let spec = CaseSpec::parse(&case_text()).unwrap();
    // The serial backend is the only run-to-run reproducible one; the
    // parallel sweeper's reduction order varies with thread timing.
    let mut dsl_cfg = RunConfig::from_case(&spec).unwrap();
    dsl_cfg.backend = BackendConfig::CpuSerial;
    let mut hard_cfg = dsl_cfg.clone();
    hard_cfg.model = ModelSpec::C5g7(hardcoded_options());
    hard_cfg.case_name = "c5g7-hardcoded".into();

    let a = run(&dsl_cfg);
    let b = run(&hard_cfg);

    assert_eq!(a.converged, b.converged);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.keff.to_bits(), b.keff.to_bits(), "keff {} vs {}", a.keff, b.keff);
    assert_eq!(a.num_fsrs, b.num_fsrs);
    assert_eq!(a.num_2d_tracks, b.num_2d_tracks);
    assert_eq!(a.num_3d_tracks, b.num_3d_tracks);
    assert_eq!(a.num_3d_segments, b.num_3d_segments);

    let (ra, rb) = (a.pin_rates.entries(), b.pin_rates.entries());
    assert_eq!(ra.len(), rb.len(), "pin-rate entry count");
    for ((addr_a, rate_a), (addr_b, rate_b)) in ra.iter().zip(&rb) {
        assert_eq!(addr_a, addr_b);
        assert_eq!(rate_a.to_bits(), rate_b.to_bits(), "pin {addr_a:?}: {rate_a} vs {rate_b}");
    }

    assert_eq!(a.material_flux.len(), b.material_flux.len());
    for ((na, fa), (nb, fb)) in a.material_flux.iter().zip(&b.material_flux) {
        assert_eq!(na, nb);
        assert_eq!(fa.len(), fb.len());
        for (x, y) in fa.iter().zip(fb) {
            assert_eq!(x.to_bits(), y.to_bits(), "material {na} flux {x} vs {y}");
        }
    }
}
