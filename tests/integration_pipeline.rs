//! Cross-crate integration: the full five-stage pipeline on the C5G7
//! model, across backends and storage modes.

use antmoc::solver::StorageMode;
use antmoc::{run, BackendConfig, RunConfig};

fn coarse(extra: &str) -> RunConfig {
    RunConfig::parse(&format!(
        r#"
[model]
axial_dz = 21.42
[tracks]
num_azim = 4
radial_spacing = 1.2
num_polar = 2
axial_spacing = 20.0
[solver]
tolerance = 2e-4
max_iterations = 500
{extra}
"#
    ))
    .unwrap()
}

#[test]
fn cpu_and_device_backends_agree() {
    let cpu = run(&coarse("backend = cpu\nmode = otf\n"));
    assert!(cpu.converged);
    let dev = run(&coarse(
        "backend = device\ndevice_memory_mb = 1024\nmode = explicit\ncu_mapping = sorted\n",
    ));
    assert!(dev.converged);
    assert!((cpu.keff - dev.keff).abs() < 5e-4, "cpu k {} vs device k {}", cpu.keff, dev.keff);
    // Same tracks, same physics: pin rates nearly identical (f32 segment
    // storage is the only difference).
    let err = cpu.pin_rates.max_relative_error(&dev.pin_rates);
    assert!(err < 5e-3, "pin max rel err {err}");
}

#[test]
fn storage_modes_do_not_change_the_answer() {
    let otf = run(&coarse("backend = cpu\nmode = otf\n"));
    let exp = run(&coarse("backend = cpu\nmode = explicit\n"));
    let mgr = run(&coarse("backend = cpu\nmode = manager\nmanager_budget_mb = 1\n"));
    for (label, r) in [("explicit", &exp), ("manager", &mgr)] {
        assert!((r.keff - otf.keff).abs() < 5e-4, "{label} k {} vs otf {}", r.keff, otf.keff);
    }
}

#[test]
fn fission_rate_map_shape_matches_the_benchmark() {
    // Fig. 7: highest rates near the core centre (the reflective corner),
    // decaying towards the reflector.
    let r = run(&coarse("backend = cpu\nmode = otf\n"));
    let inner = r.pin_rates.get((0, 0), (2, 2));
    let outer_uo2_far = r.pin_rates.get((1, 1), (15, 15));
    assert!(inner > 0.0 && outer_uo2_far > 0.0);
    assert!(
        inner > outer_uo2_far,
        "inner pin {inner} should out-produce the far outer-UO2 pin {outer_uo2_far}"
    );
    // Reflector assemblies have no pins at all.
    assert_eq!(r.pin_rates.get((2, 2), (8, 8)), 0.0);
    // All four fuel assemblies produced power.
    for (ax, ay) in [(0, 0), (1, 0), (0, 1), (1, 1)] {
        assert!(r.pin_rates.get((ax, ay), (8, 7)) > 0.0, "assembly ({ax},{ay}) silent");
    }
}

#[test]
fn rodded_configuration_lowers_keff() {
    let unrodded = run(&coarse("backend = cpu\nmode = otf\n"));
    let mut cfg = coarse("backend = cpu\nmode = otf\n");
    cfg.model.c5g7_mut().config = antmoc::geom::c5g7::RoddedConfig::RoddedB;
    let rodded = run(&cfg);
    assert!(rodded.converged);
    assert!(
        rodded.keff < unrodded.keff - 0.002,
        "rodded k {} should sit clearly below unrodded {}",
        rodded.keff,
        unrodded.keff
    );
}

#[test]
fn axial_power_profile_peaks_at_the_reflective_bottom() {
    use antmoc::geom::c5g7::C5g7;
    use antmoc::output::AxialPowerProfile;
    use antmoc::solver::{fission_rates, solve_eigenvalue, CpuSweeper, Problem, SegmentSource};

    let cfg = coarse("backend = cpu\nmode = otf\n");
    let model = C5g7::build(cfg.model.c5g7().clone());
    let problem = Problem::build(
        model.geometry.clone(),
        model.axial.clone(),
        &model.library,
        cfg.tracks.clone(),
    );
    let segsrc = SegmentSource::otf();
    let mut sweeper = CpuSweeper::new(&segsrc);
    let r = solve_eigenvalue(&problem, &mut sweeper, &cfg.eigen);
    assert!(r.converged);
    let rates = fission_rates(&problem, &r.phi);
    // Three slabs matching the coarse model's three axial cells.
    let profile =
        AxialPowerProfile::aggregate(&model, std::iter::once((&problem, rates.as_slice())), 3);
    assert_eq!(profile.slabs.len(), 3);
    // The top third is the water reflector: no fission there.
    assert!(profile.slabs[2] < 1e-9, "reflector slab has power: {:?}", profile.slabs);
    // Power decays from the reflective midplane (bottom) toward the
    // vacuum top within the fuel.
    assert!(profile.slabs[0] > profile.slabs[1], "profile not decaying: {:?}", profile.slabs);
    let mut csv = Vec::new();
    profile.write_csv(&mut csv).unwrap();
    assert_eq!(String::from_utf8(csv).unwrap().lines().count(), 4);
}

#[test]
fn group_spectra_show_reflector_thermalisation() {
    use antmoc::geom::c5g7::{AssemblyKind, C5g7};
    use antmoc::output::GroupSpectra;
    use antmoc::solver::{solve_eigenvalue, CpuSweeper, Problem, SegmentSource};

    let cfg = coarse("backend = cpu\nmode = otf\n");
    let model = C5g7::build(cfg.model.c5g7().clone());
    let problem = Problem::build(
        model.geometry.clone(),
        model.axial.clone(),
        &model.library,
        cfg.tracks.clone(),
    );
    let segsrc = SegmentSource::otf();
    let mut sweeper = CpuSweeper::new(&segsrc);
    let r = solve_eigenvalue(&problem, &mut sweeper, &cfg.eigen);
    assert!(r.converged);
    let spectra = GroupSpectra::aggregate(&model, std::iter::once((&problem, r.phi.as_slice())));
    assert_eq!(spectra.num_groups, 7);
    // Every spectrum is a distribution.
    for kind in
        [AssemblyKind::InnerUo2, AssemblyKind::OuterUo2, AssemblyKind::Mox, AssemblyKind::Reflector]
    {
        let s = spectra.of(kind);
        let total: f64 = s.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "{kind:?}: {total}");
        assert!(s.iter().all(|&x| x >= 0.0));
    }
    // The water reflector is more thermal than the fuels; MOX is the
    // hardest (thermal neutrons eaten by the plutonium-like absorption).
    let refl = spectra.thermal_fraction(AssemblyKind::Reflector);
    let uo2 = spectra.thermal_fraction(AssemblyKind::InnerUo2);
    let mox = spectra.thermal_fraction(AssemblyKind::Mox);
    assert!(refl > uo2, "reflector {refl} vs UO2 {uo2}");
    assert!(uo2 > mox, "UO2 {uo2} vs MOX {mox}");
    let mut csv = Vec::new();
    spectra.write_csv(&mut csv).unwrap();
    assert_eq!(String::from_utf8(csv).unwrap().lines().count(), 1 + 4 * 7);
}

#[test]
fn shipped_run_configs_parse() {
    // The artifact-style configs under run/ must stay valid.
    for name in ["run/c5g7-validation.ini", "run/quick.ini"] {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../").to_string() + name;
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
        let cfg = RunConfig::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert!(cfg.tracks.num_azim >= 4);
        assert!(cfg.eigen.max_iterations > 0);
    }
}

#[test]
fn config_mode_wiring_reaches_the_solver() {
    let cfg = coarse("backend = cpu\nmode = manager\nmanager_budget_mb = 3\n");
    assert_eq!(cfg.mode, StorageMode::Manager { budget_bytes: 3 << 20 });
    assert_eq!(cfg.backend, BackendConfig::Cpu);
}
