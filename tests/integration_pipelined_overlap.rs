//! End-to-end overlap evidence for the pipelined boundary exchange, via
//! the full config-driven pipeline on a 4-rank decomposition under a
//! simulated interconnect (500 us latency, 20 MB/s):
//!
//! * the pipelined run's blocking point-to-point wait tail
//!   (`comm.recv_wait_ns` p99) is strictly below the synchronous run's —
//!   payloads ship during the interior sweep, so the drain mostly polls
//!   them out ready;
//! * the `comm.overlap_ratio` gauge lands positive;
//! * the Chrome trace shows the overlap structurally: a
//!   `comm.exchange_send` slice fully contained inside a `cluster.sweep`
//!   slice on the same thread;
//! * timing never changes physics: sync and pipelined k_eff are bitwise
//!   equal on the serial backend.
//!
//! One test function on purpose: both runs share the process-global
//! telemetry, so they must not interleave with other tests in this
//! binary.

use antmoc::config::RunConfig;
use antmoc::pipeline::run;
use antmoc::telemetry::{Json, Telemetry};

const BASE: &str = r#"
[model]
axial_dz = 21.42
[tracks]
num_azim = 4
radial_spacing = 1.2
num_polar = 2
axial_spacing = 20.0
[decomposition]
nx = 2
ny = 2
nz = 1
link_latency_us = 500
link_mb_per_s = 20
[solver]
tolerance = 1e-30
max_iterations = 12
mode = otf
backend = cpu-serial
[telemetry]
trace = true
"#;

fn p99(report: &antmoc::telemetry::RunReport) -> u64 {
    report.histograms.get("comm.recv_wait_ns").map_or(0, |h| h.p99)
}

#[test]
fn pipelined_exchange_overlaps_the_interior_sweep() {
    let tel = Telemetry::global();

    tel.reset();
    let sync_cfg = RunConfig::parse(BASE).unwrap();
    let sync = run(&sync_cfg);
    let sync_report = tel.report();

    tel.reset();
    let pipe_cfg =
        RunConfig::parse(&format!("{BASE}[decomposition]\nexchange = pipelined\n")).unwrap();
    let pipe = run(&pipe_cfg);
    let pipe_report = tel.report();
    let trace = tel.trace_json();

    // Link timing never changes physics: bitwise-equal answers.
    assert_eq!(
        sync.keff.to_bits(),
        pipe.keff.to_bits(),
        "sync k {} vs pipelined k {}",
        sync.keff,
        pipe.keff
    );

    // The wait tail shrinks: synchronous receives pay the link latency
    // and per-destination serialization; pipelined receives mostly find
    // the payload already landed.
    let (sp99, pp99) = (p99(&sync_report), p99(&pipe_report));
    assert!(sp99 > 0, "sync run under a 500 us link recorded no blocking waits");
    assert!(pp99 < sp99, "recv_wait_ns p99: pipelined {pp99} not below sync {sp99}");

    // The drain classified its receives and the overlap gauge is live.
    let ready = pipe_report.counter("comm.recv_ready");
    let blocked = pipe_report.counter("comm.recv_blocked");
    assert!(ready > 0, "no exchange receive found its payload already landed");
    let overlap = pipe_report.gauges.get("comm.overlap_ratio").map_or(0.0, |g| g.high_water);
    assert!(
        overlap > 0.0 && overlap <= 1.0,
        "comm.overlap_ratio {overlap} (ready {ready}, blocked {blocked})"
    );

    // Structural overlap in the timeline: some exchange send completes
    // inside a sweep slice on the same thread.
    let Some(Json::Arr(events)) = trace.get("traceEvents").cloned() else {
        panic!("trace document has no traceEvents array");
    };
    let slices = |name: &str| -> Vec<(f64, f64, f64)> {
        events
            .iter()
            .filter(|e| {
                e.get("name").and_then(Json::as_str) == Some(name)
                    && e.get("ph").and_then(Json::as_str) == Some("X")
            })
            .map(|e| {
                let ts = e.get("ts").and_then(Json::as_f64).unwrap();
                let dur = e.get("dur").and_then(Json::as_f64).unwrap();
                let tid = e.get("tid").and_then(Json::as_f64).unwrap();
                (ts, dur, tid)
            })
            .collect()
    };
    let sweeps = slices("cluster.sweep");
    let sends = slices("comm.exchange_send");
    assert!(!sweeps.is_empty(), "no cluster.sweep slices in the trace");
    assert!(!sends.is_empty(), "no comm.exchange_send slices in the trace");
    let nested = sends.iter().any(|&(sts, sdur, stid)| {
        sweeps
            .iter()
            .any(|&(wts, wdur, wtid)| stid == wtid && sts >= wts && sts + sdur <= wts + wdur)
    });
    assert!(nested, "no exchange send is nested inside a sweep slice on the same thread");
}
