//! End-to-end fault recovery with the **pipelined** boundary exchange:
//! the same kill-rank-1 scenario as `integration_fault_recovery`, but
//! with `[decomposition] exchange = pipelined`, so the run exercises the
//! nonblocking receive path (poll first, block on the fault-decorated
//! receive only when the payload has not landed) under message drops,
//! bit-flips, and a mid-solve rank death. The recovered k_eff must still
//! match the fault-free pipelined run to 1e-8 and the restart machinery
//! must report exactly one absorbed failure.
//!
//! One test function on purpose: both runs share the process-global
//! telemetry, so they must not interleave with other tests in this
//! binary.

use antmoc::config::RunConfig;
use antmoc::pipeline::run;
use antmoc::telemetry::{Json, Telemetry};

const BASE: &str = r#"
[model]
axial_dz = 21.42
[tracks]
num_azim = 4
radial_spacing = 1.2
num_polar = 2
axial_spacing = 20.0
[decomposition]
nx = 2
ny = 2
nz = 1
exchange = pipelined
[solver]
tolerance = 1e-30
max_iterations = 25
mode = otf
backend = cpu-serial
"#;

const FAULT: &str = r#"
[fault]
enabled = true
seed = 42
drop_p = 0.05
flip_p = 0.01
max_retries = 24
checkpoint_interval = 5
max_restarts = 4
kill_rank = 1
kill_iteration = 18
"#;

#[test]
fn killed_rank_recovers_under_the_pipelined_exchange() {
    let tel = Telemetry::global();

    // Fault-free pipelined reference: the fixed iteration budget (1e-30
    // tolerance is unreachable) makes both runs execute identical
    // arithmetic, so the k comparison is exact.
    tel.reset();
    let clean_cfg = RunConfig::parse(BASE).unwrap();
    assert!(!clean_cfg.fault.enabled);
    assert_eq!(clean_cfg.exchange, antmoc_solver::ExchangeMode::Pipelined);
    let clean = run(&clean_cfg);

    tel.reset();
    let cfg = RunConfig::parse(&format!("{BASE}{FAULT}")).unwrap();
    assert!(cfg.fault.enabled);
    assert_eq!(cfg.exchange, antmoc_solver::ExchangeMode::Pipelined);
    let report = run(&cfg);
    let artifact = antmoc::artifact::run_artifact(&report);

    assert!(
        (report.keff - clean.keff).abs() < 1e-8,
        "recovered pipelined k {} vs fault-free pipelined {}",
        report.keff,
        clean.keff
    );
    assert_eq!(report.iterations, clean.iterations);

    // The injection landed and the degradation response engaged: exactly
    // one rank death absorbed, retried sends from the drop probability,
    // and a rebalance over the three survivors.
    assert_eq!(artifact.counter("comm.rank_failures"), 1);
    assert!(artifact.counter("comm.retries") > 0, "p = 0.05 must retry some sends");
    let fault = artifact.sections.get("fault").expect("fault section");
    assert_eq!(fault.get("restarts").and_then(Json::as_u64), Some(1));
    let rebalance = artifact.sections.get("rebalance").expect("rebalance section");
    let events = match rebalance.get("events") {
        Some(Json::Arr(events)) => events,
        other => panic!("rebalance.events missing: {other:?}"),
    };
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].get("died_rank").and_then(Json::as_u64), Some(1));
    assert_eq!(events[0].get("survivors").and_then(Json::as_u64), Some(3));

    // The pipelined drain actually polled: every exchange receive is
    // classified ready or blocked, and the ratio gauge was emitted.
    let ready = artifact.counter("comm.recv_ready");
    let blocked = artifact.counter("comm.recv_blocked");
    assert!(ready + blocked > 0, "pipelined exchange recorded no receives");
}
