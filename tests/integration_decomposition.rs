//! Integration tests for spatial decomposition: exchange-plan coverage,
//! traffic against the Eq. 7 model, and agreement across decomposition
//! grids.

use antmoc::cluster::Cluster;
use antmoc::geom::c5g7::{C5g7, C5g7Options};
use antmoc::perfmodel::predict_communication_bytes;
use antmoc::solver::cluster::{solve_cluster, Backend};
use antmoc::solver::decomp::{DecompSpec, Decomposition};
use antmoc::solver::EigenOptions;
use antmoc::track::TrackParams;

fn model() -> C5g7 {
    C5g7::build(C5g7Options { axial_dz: 21.42, ..Default::default() })
}

fn params() -> TrackParams {
    TrackParams {
        num_azim: 4,
        radial_spacing: 1.2,
        num_polar: 2,
        axial_spacing: 20.0,
        ..Default::default()
    }
}

#[test]
fn different_grids_agree_on_keff() {
    let m = model();
    let opts = EigenOptions { tolerance: 2e-4, max_iterations: 600, ..Default::default() };
    let mut ks = Vec::new();
    for spec in [
        DecompSpec { nx: 2, ny: 1, nz: 1 },
        DecompSpec { nx: 2, ny: 2, nz: 1 },
        DecompSpec { nx: 2, ny: 2, nz: 2 },
    ] {
        let d = Decomposition::build(&m.geometry, &m.axial, &m.library, params(), spec);
        let r = solve_cluster(&d, &Backend::Cpu, &opts);
        assert!(r.converged, "{spec:?} did not converge");
        ks.push(r.keff);
    }
    let max = ks.iter().cloned().fold(f64::MIN, f64::max);
    let min = ks.iter().cloned().fold(f64::MAX, f64::min);
    // Each grid re-lays tracks per window, so at this deliberately coarse
    // CI resolution the spread is discretisation, not divergence; the
    // paper itself notes raw rates shift under decomposition (§2.1).
    assert!(max - min < 8e-2, "k spread too wide across grids: {ks:?}");
    for k in &ks {
        assert!(*k > 0.95 && *k < 1.25, "k {k} unphysical: {ks:?}");
    }
}

#[test]
fn exchange_traffic_is_bounded_by_eq7() {
    // Eq. 7 with the *total* 3D track count is the paper's upper-bound
    // communication model; actual per-iteration traffic (boundary tracks
    // only) must sit below it but be non-trivial.
    let m = model();
    let d = Decomposition::build(
        &m.geometry,
        &m.axial,
        &m.library,
        params(),
        DecompSpec { nx: 2, ny: 2, nz: 1 },
    );
    let opts = EigenOptions { tolerance: 1e-30, max_iterations: 4, ..Default::default() };
    let r = solve_cluster(&d, &Backend::Cpu, &opts);

    let n3d: u64 = d.problems.iter().map(|p| p.num_tracks() as u64).sum();
    let eq7_bound = predict_communication_bytes(n3d, 7) * r.iterations as u64;
    let flux_sent: u64 = r.traffic.iter().map(|t| t.sent_bytes).sum();
    assert!(flux_sent > 0);
    assert!(flux_sent < eq7_bound, "sent {flux_sent} exceeds the Eq. 7 bound {eq7_bound}");
    // Planned sends * groups * 4 bytes * iterations accounts for almost
    // all traffic (collectives add only scalars).
    let planned: u64 = d.exchanges.iter().map(|e| e.sends.len() as u64).sum();
    let planned_bytes = planned * 7 * 4 * r.iterations as u64;
    assert!(flux_sent >= planned_bytes, "sent {flux_sent} < planned {planned_bytes}");
}

#[test]
fn subdomain_problems_partition_the_core() {
    let m = model();
    let d = Decomposition::build(
        &m.geometry,
        &m.axial,
        &m.library,
        params(),
        DecompSpec { nx: 2, ny: 2, nz: 2 },
    );
    // Volumes of all subdomains sum to the core volume.
    let total: f64 = d.problems.iter().flat_map(|p| p.volumes.iter()).sum();
    let w = antmoc::geom::c5g7::CORE_WIDTH;
    let h = antmoc::geom::c5g7::CORE_HEIGHT;
    let exact = w * w * h;
    assert!(
        (total - exact).abs() / exact < 0.03,
        "tracked subdomain volumes {total} vs exact {exact}"
    );
    // Sub-geometry windows tile the radial plane.
    for p in &d.problems {
        let (x0, x1, y0, y1) = p.geometry.bounds();
        assert!(((x1 - x0) - w / 2.0).abs() < 1e-9);
        assert!(((y1 - y0) - w / 2.0).abs() < 1e-9);
    }
}

#[test]
fn cluster_substrate_scales_to_many_ranks() {
    // Pure substrate check: 32 thread-ranks doing a halo exchange plus
    // reductions (the communication skeleton of a big run).
    let n = 32;
    let out = Cluster::run(n, |mut comm| {
        let me = comm.rank();
        let right = (me + 1) % n;
        let left = (me + n - 1) % n;
        comm.send_vec(right, 1, vec![me as f32; 128]);
        let got: Vec<f32> = comm.recv_vec(left, 1);
        assert_eq!(got[0] as usize, left);
        let sum = comm.allreduce_sum(1.0);
        assert_eq!(sum as usize, n);
        comm.barrier();
        me
    });
    assert_eq!(out.results.len(), n);
    assert!(out.traffic.iter().all(|t| t.sent_bytes >= 128 * 4));
}
