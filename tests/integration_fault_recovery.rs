//! End-to-end fault recovery through the full pipeline: a `[fault]`
//! config kills rank 1 of a 2x2x1 decomposition mid-eigensolve while
//! messages drop and flip at p = 0.05; the run must restart from the
//! latest checkpoint, rebalance the orphaned subdomain over the three
//! survivors, and land on the fault-free k_eff, with the artifact
//! carrying the `fault`/`rebalance` sections and injection counters.
//!
//! One test function on purpose: both runs share the process-global
//! telemetry, so they must not interleave with other tests in this
//! binary.

use antmoc::config::RunConfig;
use antmoc::pipeline::run;
use antmoc::telemetry::{Json, Telemetry};

const BASE: &str = r#"
[model]
axial_dz = 21.42
[tracks]
num_azim = 4
radial_spacing = 1.2
num_polar = 2
axial_spacing = 20.0
[decomposition]
nx = 2
ny = 2
nz = 1
[solver]
tolerance = 1e-30
max_iterations = 25
mode = otf
backend = cpu-serial
"#;

const FAULT: &str = r#"
[fault]
enabled = true
seed = 42
drop_p = 0.05
flip_p = 0.01
max_retries = 24
checkpoint_interval = 5
max_restarts = 4
kill_rank = 1
kill_iteration = 18
"#;

#[test]
fn killed_rank_recovers_to_the_fault_free_answer() {
    let tel = Telemetry::global();

    // Fault-free reference: same fixed iteration budget (the 1e-30
    // tolerance is unreachable, so both runs execute identical
    // arithmetic and the k comparison is exact).
    tel.reset();
    let clean_cfg = RunConfig::parse(BASE).unwrap();
    assert!(!clean_cfg.fault.enabled);
    let clean = run(&clean_cfg);

    tel.reset();
    let cfg = RunConfig::parse(&format!("{BASE}{FAULT}")).unwrap();
    assert!(cfg.fault.enabled);
    assert_eq!(cfg.fault.comm.deaths.len(), 1);
    let report = run(&cfg);
    let artifact = antmoc::artifact::run_artifact(&report);

    // The serial backend plus canonical subdomain-ordered reductions make
    // the recovered answer bitwise equal to fault-free; the gate itself
    // is the issue's 1e-8.
    assert!(
        (report.keff - clean.keff).abs() < 1e-8,
        "recovered k {} vs fault-free {}",
        report.keff,
        clean.keff
    );
    assert_eq!(report.iterations, clean.iterations);

    // The artifact records the injection and the degradation response.
    assert_eq!(artifact.counter("comm.rank_failures"), 1);
    assert!(artifact.counter("comm.retries") > 0, "p = 0.05 must retry some sends");
    assert!(artifact.counter("comm.dropped") + artifact.counter("comm.flipped") > 0);
    let fault = artifact.sections.get("fault").expect("fault section");
    assert_eq!(fault.get("restarts").and_then(Json::as_u64), Some(1));
    let rebalance = artifact.sections.get("rebalance").expect("rebalance section");
    let events = match rebalance.get("events") {
        Some(Json::Arr(events)) => events,
        other => panic!("rebalance.events missing: {other:?}"),
    };
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].get("died_rank").and_then(Json::as_u64), Some(1));
    assert_eq!(events[0].get("survivors").and_then(Json::as_u64), Some(3));
    // Checkpoints at 5, 10, 15 and a death at 18: the restart replays
    // from iteration 16.
    assert_eq!(events[0].get("restart_iteration").and_then(Json::as_u64), Some(16));
}
